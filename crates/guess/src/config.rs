//! Simulation configuration: the paper's system parameters (Table 1),
//! protocol parameters (Table 2), and run controls.

use simkit::scenario::MaintenanceMode;
use simkit::time::SimDuration;
use workload::content::CatalogParams;

use crate::policy::{ReplacementPolicy, SelectionPolicy};

/// What a malicious peer puts in its pongs (§6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BadPongBehavior {
    /// Fabricated dead IP addresses (non-colluding attackers).
    #[default]
    Dead,
    /// Addresses of other live malicious peers (colluding attackers).
    Bad,
    /// Addresses of ordinary good peers (a "benign" control).
    Good,
}

impl std::fmt::Display for BadPongBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BadPongBehavior::Dead => "Dead",
            BadPongBehavior::Bad => "Bad",
            BadPongBehavior::Good => "Good",
        };
        f.write_str(s)
    }
}

/// System parameters — the environment GUESS runs in (paper Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemParams {
    /// Number of live peers at all times (`NetworkSize`).
    pub network_size: usize,
    /// Results required to satisfy a query (`NumDesiredResults`).
    pub num_desired_results: u32,
    /// Scales every drawn peer lifetime (`LifespanMultiplier`).
    pub lifespan_multiplier: f64,
    /// Expected queries per user per second (`QueryRate`).
    pub query_rate: f64,
    /// Per-peer probe admission limit (`MaxProbesPerSecond`); `None`
    /// disables capacity limits entirely.
    pub max_probes_per_second: Option<u32>,
    /// Fraction of the population that is malicious (`PercentBadPeers`,
    /// as a fraction in `[0,1]`, not a percentage).
    pub bad_peer_fraction: f64,
    /// What malicious peers return in pongs (`BadPongBehavior`).
    pub bad_pong_behavior: BadPongBehavior,
    /// Fraction of honest peers that are *selfish* (§3.3): they ignore
    /// the serial-probe rule and fire large probe volleys to minimize
    /// their own response time, whatever the cost to others.
    pub selfish_fraction: f64,
    /// Probes a selfish peer sends per round instead of obeying the
    /// configured `parallel_probes`.
    pub selfish_parallelism: usize,
}

impl Default for SystemParams {
    /// The defaults of Table 1.
    fn default() -> Self {
        SystemParams {
            network_size: 1000,
            num_desired_results: 1,
            lifespan_multiplier: 1.0,
            query_rate: 9.26e-3,
            max_probes_per_second: Some(100),
            bad_peer_fraction: 0.0,
            bad_pong_behavior: BadPongBehavior::Dead,
            selfish_fraction: 0.0,
            selfish_parallelism: 50,
        }
    }
}

/// Parameters of the adaptive ping-interval controller (an extension the
/// paper's §6.1 sketches: "a peer should adjust its PingInterval to
/// maintain a certain threshold of live entries in its cache").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePing {
    /// Fastest allowed pinging.
    pub min_interval: SimDuration,
    /// Slowest allowed pinging.
    pub max_interval: SimDuration,
    /// Multiplier applied when a ping finds a dead neighbor (< 1).
    pub on_dead: f64,
    /// Multiplier applied when a ping finds a live neighbor (> 1).
    pub on_alive: f64,
}

impl Default for AdaptivePing {
    fn default() -> Self {
        AdaptivePing {
            min_interval: SimDuration::from_secs(5.0),
            max_interval: SimDuration::from_secs(300.0),
            on_dead: 0.5,
            on_alive: 1.15,
        }
    }
}

/// Parameters of adaptive query parallelism (the paper's §6.2 future
/// work: "adaptively increase k if successive sets of parallel probes
/// are unsuccessful").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveParallelism {
    /// Consecutive resultless probes before the walk width doubles.
    pub escalate_after: u32,
    /// Upper bound on the walk width.
    pub max_k: usize,
}

impl Default for AdaptiveParallelism {
    fn default() -> Self {
        AdaptiveParallelism {
            escalate_after: 10,
            max_k: 32,
        }
    }
}

/// Parameters of the push-maintenance plane (the CUP-style extension:
/// subjects push invalidations/refreshes to registered interest holders
/// instead of waiting to be polled stale). Active only when
/// [`ProtocolParams::maintenance_mode`] is not [`MaintenanceMode::Pull`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushParams {
    /// Direct deliveries a subject (or relay) makes per dissemination
    /// step; remaining interest holders are split among those
    /// recipients as relay lists (bounded fan-out tree). Refresh flushes
    /// are additionally *capped* at this many deliveries (no relaying)
    /// and rotate through the registry round-robin, so the steady-state
    /// refresh bandwidth per subject is `fanout` messages per flush.
    pub fanout: usize,
    /// Relay hops an update may take below the subject before the
    /// residue is dropped.
    pub ttl: u32,
    /// Window over which refresh pushes to the same interest set
    /// coalesce into one dissemination.
    pub coalesce_window: SimDuration,
    /// Most interest registrations a subject retains (oldest evicted
    /// first); bounds per-peer push state like `cache_size` bounds the
    /// link cache.
    pub interest_cap: usize,
    /// Factor by which [`MaintenanceMode::Push`] stretches the ping
    /// interval — pushes replace most polling, so pulls slow down.
    /// `Hybrid` keeps full-rate pings and only adds invalidations.
    pub ping_stretch: f64,
}

impl Default for PushParams {
    fn default() -> Self {
        // Tuned at full scale (N=1000, lifespan multipliers 1.0/0.2/0.05):
        // narrow trees + a mild ping stretch beat the aggressive
        // fanout-4/stretch-8 variants on coherence lag per message,
        // because pings remain the only channel that *removes* dead
        // entries and stretching them 8x starves it.
        PushParams {
            fanout: 2,
            ttl: 3,
            coalesce_window: SimDuration::from_secs(300.0),
            interest_cap: 16,
            ping_stretch: 2.0,
        }
    }
}

/// Protocol parameters — how GUESS itself is configured (paper Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolParams {
    /// Order in which peers are probed for a query (`QueryProbe`).
    pub query_probe: SelectionPolicy,
    /// Entries preferred when answering a query's pong (`QueryPong`).
    pub query_pong: SelectionPolicy,
    /// Order in which neighbors are pinged (`PingProbe`).
    pub ping_probe: SelectionPolicy,
    /// Entries preferred when answering a ping's pong (`PingPong`).
    pub ping_pong: SelectionPolicy,
    /// Eviction policy for the link cache (`CacheReplacement`).
    pub cache_replacement: ReplacementPolicy,
    /// Elapsed time between a peer's maintenance pings (`PingInterval`).
    pub ping_interval: SimDuration,
    /// Link-cache capacity (`CacheSize`).
    pub cache_size: usize,
    /// MR\*: reset the `NumRes` field of entries learned from third
    /// parties (`ResetNumResults`).
    pub reset_num_results: bool,
    /// Back off from refusing peers instead of evicting them (`DoBackoff`).
    pub do_backoff: bool,
    /// IP addresses per pong (`PongSize`).
    pub pong_size: usize,
    /// Probability a probed peer adds the prober to its own cache
    /// (`IntroProb`).
    pub intro_prob: f64,
    /// Probes sent concurrently per query — `1` is the spec's strictly
    /// serial mode; `k > 1` models the parallel walks of §6.2.
    pub parallel_probes: usize,
    /// Gap between successive probe (rounds) of one query; the GUESS
    /// specification uses 0.2 s.
    pub probe_interval: SimDuration,
    /// Per-peer adaptive ping-interval controller; `None` pings at the
    /// fixed `ping_interval` (the paper's protocol).
    pub adaptive_ping: Option<AdaptivePing>,
    /// Adaptive walk widening during a query; `None` keeps the fixed
    /// `parallel_probes` (the paper's protocol).
    pub adaptive_parallelism: Option<AdaptiveParallelism>,
    /// Pong-source reputation filter: distrust (and eventually blacklist)
    /// peers whose shared cache entries keep turning out dead — the
    /// poisoning defense direction of Daswani & Garcia-Molina \[9\].
    pub distrust_pongs: bool,
    /// Probe payments (§3.3's incentive against selfish volleys, modeled
    /// after PPay \[23\]); `None` disables the economy.
    pub probe_payments: Option<crate::payments::PaymentParams>,
    /// How link caches are kept fresh: classic pull (the paper's
    /// protocol, the default), CUP-style push, or both.
    pub maintenance_mode: MaintenanceMode,
    /// Tuning of the push plane; inert under [`MaintenanceMode::Pull`].
    pub push: PushParams,
}

impl Default for ProtocolParams {
    /// The defaults of Table 2 (all policies Random).
    fn default() -> Self {
        ProtocolParams {
            query_probe: SelectionPolicy::Random,
            query_pong: SelectionPolicy::Random,
            ping_probe: SelectionPolicy::Random,
            ping_pong: SelectionPolicy::Random,
            cache_replacement: ReplacementPolicy::Random,
            ping_interval: SimDuration::from_secs(30.0),
            cache_size: 100,
            reset_num_results: false,
            do_backoff: false,
            pong_size: 5,
            intro_prob: 0.1,
            parallel_probes: 1,
            probe_interval: SimDuration::from_secs(0.2),
            adaptive_ping: None,
            adaptive_parallelism: None,
            distrust_pongs: false,
            probe_payments: None,
            maintenance_mode: MaintenanceMode::Pull,
            push: PushParams::default(),
        }
    }
}

impl ProtocolParams {
    /// Applies `policy` to QueryProbe, QueryPong and CacheReplacement at
    /// once (the combination the robustness experiments sweep, §6.4: e.g.
    /// "MR/MR/LR"); PingProbe/PingPong stay Random.
    #[must_use]
    pub fn with_uniform_policy(mut self, policy: SelectionPolicy) -> Self {
        self.query_probe = policy;
        self.query_pong = policy;
        self.cache_replacement = policy.mirror_replacement();
        self
    }
}

/// Run controls: duration, warm-up, sampling cadence, seeding.
#[derive(Debug, Clone, PartialEq)]
pub struct RunParams {
    /// Total simulated time.
    pub duration: SimDuration,
    /// Initial span excluded from query metrics (cache warm-up).
    pub warmup: SimDuration,
    /// Cadence of cache-health / connectivity snapshots.
    pub sample_interval: SimDuration,
    /// Entries pre-seeded into each initial peer's cache
    /// (`CacheSeedSize`, ≈ NetworkSize/100 in the paper).
    pub cache_seed_size: usize,
    /// Master seed; everything stochastic derives from it.
    pub seed: u64,
    /// Generate and execute queries. The connectivity experiments (§6.1,
    /// Figs 6–7) turn queries off to isolate ping-driven maintenance.
    pub simulate_queries: bool,
    /// Population size above which the periodic cache-health and
    /// connectivity snapshots switch from exhaustive sweeps to seeded
    /// stride sampling. At or below the threshold the sweeps touch every
    /// slot and draw nothing from the metrics RNG stream, so small-N
    /// runs are byte-identical whether or not sampling is configured.
    pub metrics_sample_threshold: usize,
    /// Number of slots each sampled snapshot visits once the threshold
    /// is exceeded (clamped to the population size).
    pub metrics_sample_size: usize,
    /// Lane count for the conservative parallel kernel
    /// ([`crate::engine::run_lanes`]). `1` (the default) is the serial
    /// path — byte-identical to every committed golden. With `n > 1`
    /// the population is split into `n` seed-addressed lanes whose
    /// output is a pure function of `(seed, lanes)`, independent of how
    /// many worker threads execute them.
    pub lanes: usize,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            duration: SimDuration::from_secs(2400.0),
            warmup: SimDuration::from_secs(600.0),
            sample_interval: SimDuration::from_secs(60.0),
            cache_seed_size: 10,
            seed: 0x6a55,
            simulate_queries: true,
            metrics_sample_threshold: 50_000,
            metrics_sample_size: 10_000,
            lanes: 1,
        }
    }
}

/// The full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Config {
    /// Environment parameters (Table 1).
    pub system: SystemParams,
    /// Protocol parameters (Table 2).
    pub protocol: ProtocolParams,
    /// Run controls.
    pub run: RunParams,
    /// Content universe parameters.
    pub catalog: CatalogParams,
}

/// Error validating a [`Config`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `network_size` was zero.
    EmptyNetwork,
    /// `cache_size` was zero.
    ZeroCacheSize,
    /// `pong_size` was zero (pongs are the only gossip channel).
    ZeroPongSize,
    /// `intro_prob` outside `[0,1]`.
    BadIntroProb,
    /// `bad_peer_fraction` outside `[0,1)`.
    BadBadPeerFraction,
    /// `num_desired_results` was zero.
    ZeroDesiredResults,
    /// `lifespan_multiplier` not finite/positive.
    BadLifespanMultiplier,
    /// `query_rate` not finite/positive.
    BadQueryRate,
    /// `parallel_probes` was zero.
    ZeroParallelProbes,
    /// Warm-up not shorter than duration.
    WarmupTooLong,
    /// `cache_seed_size` exceeded `network_size - 1`.
    SeedTooLarge,
    /// `selfish_fraction` outside `[0,1)` or zero `selfish_parallelism`.
    BadSelfishParams,
    /// Adaptive ping bounds inverted or factors on the wrong side of 1.
    BadAdaptivePing,
    /// Adaptive parallelism with a zero window or `max_k` of zero.
    BadAdaptiveParallelism,
    /// Payment parameters non-finite, negative, or initial > max.
    BadPaymentParams,
    /// `metrics_sample_size` was zero.
    ZeroMetricsSample,
    /// Push-plane parameters inconsistent: zero fan-out/TTL/interest
    /// cap, or a ping stretch below 1.
    BadPushParams,
    /// `lanes` was zero, or left fewer than two peers per lane.
    BadLanes,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ConfigError::EmptyNetwork => "network size must be positive",
            ConfigError::ZeroCacheSize => "cache size must be positive",
            ConfigError::ZeroPongSize => "pong size must be positive",
            ConfigError::BadIntroProb => "introduction probability must be within [0, 1]",
            ConfigError::BadBadPeerFraction => "bad-peer fraction must be within [0, 1)",
            ConfigError::ZeroDesiredResults => "desired results must be positive",
            ConfigError::BadLifespanMultiplier => "lifespan multiplier must be finite and positive",
            ConfigError::BadQueryRate => "query rate must be finite and positive",
            ConfigError::ZeroParallelProbes => "parallel probe count must be positive",
            ConfigError::WarmupTooLong => "warm-up must be shorter than the run duration",
            ConfigError::SeedTooLarge => "cache seed size must be below the network size",
            ConfigError::BadSelfishParams => {
                "selfish fraction must be within [0, 1) with positive parallelism"
            }
            ConfigError::BadAdaptivePing => {
                "adaptive ping needs min <= max, on_dead in (0,1], on_alive >= 1"
            }
            ConfigError::BadAdaptiveParallelism => {
                "adaptive parallelism needs a positive window and max_k"
            }
            ConfigError::BadPaymentParams => {
                "payment parameters must be finite, non-negative, with initial <= max"
            }
            ConfigError::ZeroMetricsSample => "metrics sample size must be positive",
            ConfigError::BadPushParams => {
                "push maintenance needs positive fan-out, ttl and interest cap, ping stretch >= 1"
            }
            ConfigError::BadLanes => "lanes must be positive and leave at least 2 peers per lane",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.system.network_size == 0 {
            return Err(ConfigError::EmptyNetwork);
        }
        if self.protocol.cache_size == 0 {
            return Err(ConfigError::ZeroCacheSize);
        }
        if self.protocol.pong_size == 0 {
            return Err(ConfigError::ZeroPongSize);
        }
        if !(0.0..=1.0).contains(&self.protocol.intro_prob) {
            return Err(ConfigError::BadIntroProb);
        }
        if !(0.0..1.0).contains(&self.system.bad_peer_fraction) {
            return Err(ConfigError::BadBadPeerFraction);
        }
        if self.system.num_desired_results == 0 {
            return Err(ConfigError::ZeroDesiredResults);
        }
        if !self.system.lifespan_multiplier.is_finite() || self.system.lifespan_multiplier <= 0.0 {
            return Err(ConfigError::BadLifespanMultiplier);
        }
        if !self.system.query_rate.is_finite() || self.system.query_rate <= 0.0 {
            return Err(ConfigError::BadQueryRate);
        }
        if self.protocol.parallel_probes == 0 {
            return Err(ConfigError::ZeroParallelProbes);
        }
        if self.run.warmup >= self.run.duration {
            return Err(ConfigError::WarmupTooLong);
        }
        if self.run.cache_seed_size >= self.system.network_size {
            return Err(ConfigError::SeedTooLarge);
        }
        if self.run.metrics_sample_size == 0 {
            return Err(ConfigError::ZeroMetricsSample);
        }
        if self.run.lanes == 0
            || (self.run.lanes > 1 && self.system.network_size / self.run.lanes < 2)
        {
            return Err(ConfigError::BadLanes);
        }
        if !(0.0..1.0).contains(&self.system.selfish_fraction)
            || self.system.selfish_parallelism == 0
        {
            return Err(ConfigError::BadSelfishParams);
        }
        if let Some(ap) = self.protocol.adaptive_ping {
            let factors_ok = ap.on_dead > 0.0 && ap.on_dead <= 1.0 && ap.on_alive >= 1.0;
            if ap.min_interval > ap.max_interval || !factors_ok {
                return Err(ConfigError::BadAdaptivePing);
            }
        }
        if let Some(ak) = self.protocol.adaptive_parallelism {
            if ak.escalate_after == 0 || ak.max_k == 0 {
                return Err(ConfigError::BadAdaptiveParallelism);
            }
        }
        let push = &self.protocol.push;
        if push.fanout == 0
            || push.ttl == 0
            || push.interest_cap == 0
            || !push.ping_stretch.is_finite()
            || push.ping_stretch < 1.0
        {
            return Err(ConfigError::BadPushParams);
        }
        if let Some(pp) = self.protocol.probe_payments {
            let vals = [
                pp.initial_balance,
                pp.allowance_per_sec,
                pp.max_balance,
                pp.earn_per_answer,
            ];
            if vals.iter().any(|v| !v.is_finite() || *v < 0.0)
                || pp.initial_balance > pp.max_balance
            {
                return Err(ConfigError::BadPaymentParams);
            }
        }
        Ok(())
    }

    // ---- builder-style setters -------------------------------------
    //
    // Experiments sweep one or two parameters at a time off a shared
    // base config; these keep those call sites declarative instead of
    // mutating nested fields inline.

    /// Sets the master RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.run.seed = seed;
        self
    }

    /// Sets `NetworkSize` (Table 1).
    #[must_use]
    pub fn with_network_size(mut self, n: usize) -> Self {
        self.system.network_size = n;
        self
    }

    /// Sets `CacheSize` (Table 2).
    #[must_use]
    pub fn with_cache_size(mut self, n: usize) -> Self {
        self.protocol.cache_size = n;
        self
    }

    /// Sets `CacheSeedSize` (entries pre-seeded per initial peer).
    #[must_use]
    pub fn with_cache_seed_size(mut self, n: usize) -> Self {
        self.run.cache_seed_size = n;
        self
    }

    /// Sets `LifespanMultiplier` (Table 1).
    #[must_use]
    pub fn with_lifespan_multiplier(mut self, m: f64) -> Self {
        self.system.lifespan_multiplier = m;
        self
    }

    /// Sets `MaxProbesPerSecond`; `None` removes the capacity limit.
    #[must_use]
    pub fn with_max_probes_per_second(mut self, limit: Option<u32>) -> Self {
        self.system.max_probes_per_second = limit;
        self
    }

    /// Applies one policy to QueryProbe, QueryPong and CacheReplacement
    /// (the §6.4 sweep combination); PingProbe/PingPong stay Random.
    #[must_use]
    pub fn with_uniform_policy(mut self, policy: SelectionPolicy) -> Self {
        self.protocol = self.protocol.with_uniform_policy(policy);
        self
    }

    /// Sets the `QueryProbe` selection policy alone.
    #[must_use]
    pub fn with_query_probe(mut self, policy: SelectionPolicy) -> Self {
        self.protocol.query_probe = policy;
        self
    }

    /// Sets the `QueryPong` selection policy alone.
    #[must_use]
    pub fn with_query_pong(mut self, policy: SelectionPolicy) -> Self {
        self.protocol.query_pong = policy;
        self
    }

    /// Sets the `CacheReplacement` eviction policy alone.
    #[must_use]
    pub fn with_cache_replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.protocol.cache_replacement = policy;
        self
    }

    /// Sets `PingInterval` (Table 2).
    #[must_use]
    pub fn with_ping_interval(mut self, interval: SimDuration) -> Self {
        self.protocol.ping_interval = interval;
        self
    }

    /// Sets the number of concurrent probes per query (§6.2 walks).
    #[must_use]
    pub fn with_parallel_probes(mut self, k: usize) -> Self {
        self.protocol.parallel_probes = k;
        self
    }

    /// Sets `ResetNumResults` (the MR\* variant).
    #[must_use]
    pub fn with_reset_num_results(mut self, reset: bool) -> Self {
        self.protocol.reset_num_results = reset;
        self
    }

    /// Enables or disables query generation; connectivity experiments
    /// (Figs 6–7) turn it off to isolate ping-driven maintenance.
    #[must_use]
    pub fn with_queries(mut self, simulate: bool) -> Self {
        self.run.simulate_queries = simulate;
        self
    }

    /// Sets the malicious population: fraction of bad peers and what
    /// their pongs advertise (§6.4).
    #[must_use]
    pub fn with_bad_peers(mut self, fraction: f64, behavior: BadPongBehavior) -> Self {
        self.system.bad_peer_fraction = fraction;
        self.system.bad_pong_behavior = behavior;
        self
    }

    /// Sets the selfish population: fraction of free-riders and the
    /// probe parallelism they use (§3.3).
    #[must_use]
    pub fn with_selfish(mut self, fraction: f64, parallelism: usize) -> Self {
        self.system.selfish_fraction = fraction;
        self.system.selfish_parallelism = parallelism;
        self
    }

    /// Installs (or removes) the adaptive ping-interval controller.
    #[must_use]
    pub fn with_adaptive_ping(mut self, ap: Option<AdaptivePing>) -> Self {
        self.protocol.adaptive_ping = ap;
        self
    }

    /// Installs (or removes) adaptive walk widening.
    #[must_use]
    pub fn with_adaptive_parallelism(mut self, ak: Option<AdaptiveParallelism>) -> Self {
        self.protocol.adaptive_parallelism = ak;
        self
    }

    /// Enables or disables the pong-source reputation filter.
    #[must_use]
    pub fn with_distrust_pongs(mut self, distrust: bool) -> Self {
        self.protocol.distrust_pongs = distrust;
        self
    }

    /// Installs (or removes) the probe-payment economy (§3.3).
    #[must_use]
    pub fn with_probe_payments(mut self, pp: Option<crate::payments::PaymentParams>) -> Self {
        self.protocol.probe_payments = pp;
        self
    }

    /// Sets the cache maintenance mode (pull, push, or hybrid).
    #[must_use]
    pub fn with_maintenance_mode(mut self, mode: MaintenanceMode) -> Self {
        self.protocol.maintenance_mode = mode;
        self
    }

    /// Replaces the push-plane tuning parameters.
    #[must_use]
    pub fn with_push_params(mut self, push: PushParams) -> Self {
        self.protocol.push = push;
        self
    }

    /// Sets when and how hard the measurement sweeps sample: exhaustive
    /// at populations up to `threshold`, `size` sampled slots beyond it.
    #[must_use]
    pub fn with_metrics_sampling(mut self, threshold: usize, size: usize) -> Self {
        self.run.metrics_sample_threshold = threshold;
        self.run.metrics_sample_size = size;
        self
    }

    /// Sets the lane count for the conservative parallel kernel; `1`
    /// keeps the serial path (see [`RunParams::lanes`]).
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.run.lanes = lanes;
        self
    }

    /// Validates the configuration and builds the simulator — the same
    /// construction surface the gnutella and gossip configs expose.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for inconsistent parameters.
    pub fn build(self) -> Result<crate::engine::GuessSim, ConfigError> {
        crate::engine::GuessSim::new(self)
    }

    /// A config scaled down for fast tests: a small network, short run,
    /// and a proportionally smaller catalog.
    #[must_use]
    pub fn small_test(seed: u64) -> Config {
        Config {
            system: SystemParams {
                network_size: 120,
                ..SystemParams::default()
            },
            protocol: ProtocolParams {
                cache_size: 30,
                ..ProtocolParams::default()
            },
            run: RunParams {
                duration: SimDuration::from_secs(400.0),
                warmup: SimDuration::from_secs(100.0),
                sample_interval: SimDuration::from_secs(40.0),
                cache_seed_size: 3,
                seed,
                simulate_queries: true,
                ..RunParams::default()
            },
            catalog: CatalogParams {
                items: 4000,
                ..CatalogParams::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_tables() {
        let c = Config::default();
        assert_eq!(c.system.network_size, 1000);
        assert_eq!(c.system.num_desired_results, 1);
        assert_eq!(c.system.lifespan_multiplier, 1.0);
        assert!((c.system.query_rate - 9.26e-3).abs() < 1e-12);
        assert_eq!(c.system.max_probes_per_second, Some(100));
        assert_eq!(c.system.bad_peer_fraction, 0.0);
        assert_eq!(c.system.bad_pong_behavior, BadPongBehavior::Dead);
        assert_eq!(c.protocol.query_probe, SelectionPolicy::Random);
        assert_eq!(c.protocol.cache_replacement, ReplacementPolicy::Random);
        assert_eq!(c.protocol.ping_interval, SimDuration::from_secs(30.0));
        assert_eq!(c.protocol.cache_size, 100);
        assert!(!c.protocol.reset_num_results);
        assert!(!c.protocol.do_backoff);
        assert_eq!(c.protocol.pong_size, 5);
        assert!((c.protocol.intro_prob - 0.1).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn uniform_policy_sets_the_trio() {
        let p = ProtocolParams::default().with_uniform_policy(SelectionPolicy::Mfs);
        assert_eq!(p.query_probe, SelectionPolicy::Mfs);
        assert_eq!(p.query_pong, SelectionPolicy::Mfs);
        assert_eq!(p.cache_replacement, ReplacementPolicy::Lfs);
        assert_eq!(
            p.ping_probe,
            SelectionPolicy::Random,
            "ping policies untouched"
        );
    }

    #[test]
    fn validation_catches_each_field() {
        let mut c = Config::default();
        c.system.network_size = 0;
        assert_eq!(c.validate(), Err(ConfigError::EmptyNetwork));

        let mut c = Config::default();
        c.protocol.cache_size = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCacheSize));

        let mut c = Config::default();
        c.protocol.pong_size = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroPongSize));

        let mut c = Config::default();
        c.protocol.intro_prob = 1.5;
        assert_eq!(c.validate(), Err(ConfigError::BadIntroProb));

        let mut c = Config::default();
        c.system.bad_peer_fraction = 1.0;
        assert_eq!(c.validate(), Err(ConfigError::BadBadPeerFraction));

        let mut c = Config::default();
        c.system.num_desired_results = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroDesiredResults));

        let mut c = Config::default();
        c.system.lifespan_multiplier = 0.0;
        assert_eq!(c.validate(), Err(ConfigError::BadLifespanMultiplier));

        let mut c = Config::default();
        c.system.query_rate = -1.0;
        assert_eq!(c.validate(), Err(ConfigError::BadQueryRate));

        let mut c = Config::default();
        c.protocol.parallel_probes = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroParallelProbes));

        let mut c = Config::default();
        c.run.warmup = c.run.duration;
        assert_eq!(c.validate(), Err(ConfigError::WarmupTooLong));

        let mut c = Config::default();
        c.run.cache_seed_size = c.system.network_size;
        assert_eq!(c.validate(), Err(ConfigError::SeedTooLarge));

        let mut c = Config::default();
        c.system.selfish_fraction = 1.0;
        assert_eq!(c.validate(), Err(ConfigError::BadSelfishParams));

        let mut c = Config::default();
        c.system.selfish_parallelism = 0;
        assert_eq!(c.validate(), Err(ConfigError::BadSelfishParams));

        let mut c = Config::default();
        c.protocol.adaptive_ping = Some(AdaptivePing {
            min_interval: SimDuration::from_secs(100.0),
            max_interval: SimDuration::from_secs(10.0),
            ..AdaptivePing::default()
        });
        assert_eq!(c.validate(), Err(ConfigError::BadAdaptivePing));

        let mut c = Config::default();
        c.protocol.adaptive_ping = Some(AdaptivePing {
            on_alive: 0.5,
            ..AdaptivePing::default()
        });
        assert_eq!(c.validate(), Err(ConfigError::BadAdaptivePing));

        let mut c = Config::default();
        c.protocol.adaptive_parallelism = Some(AdaptiveParallelism {
            escalate_after: 0,
            ..AdaptiveParallelism::default()
        });
        assert_eq!(c.validate(), Err(ConfigError::BadAdaptiveParallelism));

        let mut c = Config::default();
        c.protocol.push.fanout = 0;
        assert_eq!(c.validate(), Err(ConfigError::BadPushParams));

        let mut c = Config::default();
        c.protocol.push.ttl = 0;
        assert_eq!(c.validate(), Err(ConfigError::BadPushParams));

        let mut c = Config::default();
        c.protocol.push.interest_cap = 0;
        assert_eq!(c.validate(), Err(ConfigError::BadPushParams));

        let mut c = Config::default();
        c.protocol.push.ping_stretch = 0.5;
        assert_eq!(c.validate(), Err(ConfigError::BadPushParams));
    }

    #[test]
    fn extension_defaults_are_off() {
        let c = Config::default();
        assert_eq!(c.system.selfish_fraction, 0.0);
        assert!(c.protocol.adaptive_ping.is_none());
        assert!(c.protocol.adaptive_parallelism.is_none());
        assert!(!c.protocol.distrust_pongs);
        assert_eq!(c.protocol.maintenance_mode, MaintenanceMode::Pull);
        let mut with_ext = c;
        with_ext.protocol.adaptive_ping = Some(AdaptivePing::default());
        with_ext.protocol.adaptive_parallelism = Some(AdaptiveParallelism::default());
        with_ext.system.selfish_fraction = 0.1;
        assert!(with_ext.validate().is_ok());
    }

    #[test]
    fn small_test_config_is_valid() {
        assert!(Config::small_test(1).validate().is_ok());
    }

    #[test]
    fn builders_set_the_named_fields() {
        let c = Config::default()
            .with_seed(0xbeef)
            .with_network_size(500)
            .with_cache_size(30)
            .with_cache_seed_size(5)
            .with_lifespan_multiplier(0.2)
            .with_max_probes_per_second(None)
            .with_query_pong(SelectionPolicy::Mfs)
            .with_ping_interval(SimDuration::from_secs(90.0))
            .with_parallel_probes(3)
            .with_reset_num_results(true)
            .with_queries(false)
            .with_bad_peers(0.1, BadPongBehavior::Bad)
            .with_selfish(0.2, 4)
            .with_distrust_pongs(true)
            .with_maintenance_mode(MaintenanceMode::Hybrid)
            .with_push_params(PushParams {
                fanout: 6,
                ..PushParams::default()
            });
        assert_eq!(c.run.seed, 0xbeef);
        assert_eq!(c.system.network_size, 500);
        assert_eq!(c.protocol.cache_size, 30);
        assert_eq!(c.run.cache_seed_size, 5);
        assert!((c.system.lifespan_multiplier - 0.2).abs() < 1e-12);
        assert_eq!(c.system.max_probes_per_second, None);
        assert_eq!(c.protocol.query_pong, SelectionPolicy::Mfs);
        assert_eq!(c.protocol.ping_interval, SimDuration::from_secs(90.0));
        assert_eq!(c.protocol.parallel_probes, 3);
        assert!(c.protocol.reset_num_results);
        assert!(!c.run.simulate_queries);
        assert!((c.system.bad_peer_fraction - 0.1).abs() < 1e-12);
        assert_eq!(c.system.bad_pong_behavior, BadPongBehavior::Bad);
        assert!((c.system.selfish_fraction - 0.2).abs() < 1e-12);
        assert_eq!(c.system.selfish_parallelism, 4);
        assert!(c.protocol.distrust_pongs);
        assert_eq!(c.protocol.maintenance_mode, MaintenanceMode::Hybrid);
        assert_eq!(c.protocol.push.fanout, 6);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn uniform_policy_builder_matches_protocol_level() {
        let c = Config::default().with_uniform_policy(SelectionPolicy::Mr);
        assert_eq!(c.protocol.query_probe, SelectionPolicy::Mr);
        assert_eq!(c.protocol.query_pong, SelectionPolicy::Mr);
        assert_eq!(c.protocol.cache_replacement, ReplacementPolicy::Lr);
    }

    #[test]
    fn bad_pong_behavior_displays() {
        assert_eq!(BadPongBehavior::Dead.to_string(), "Dead");
        assert_eq!(BadPongBehavior::Bad.to_string(), "Bad");
        assert_eq!(BadPongBehavior::Good.to_string(), "Good");
    }
}
