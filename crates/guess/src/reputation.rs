//! Pong-source reputation: a cache-poisoning defense.
//!
//! The paper observes (§6.4) that detecting malicious peers is possible
//! with heuristics — "if a peer consistently returns many dead IP
//! addresses in its Pong" — and defers the defense to future work (and to
//! Daswani & Garcia-Molina's pong-cache-poisoning report \[9\]). This
//! module implements that heuristic: every peer remembers *who told it
//! about* each cached address (provenance), charges the source when the
//! address turns out dead, and blacklists sources whose shared entries
//! are overwhelmingly dead. Entries offered by blacklisted sources are
//! dropped on arrival.
//!
//! The tracker is deliberately cheap: bounded maps, O(1) per event.

use simkit::hash::{FxHashMap, FxHashSet};

use crate::addr::PeerAddr;

/// Verdicts a tracker can reach about a pong source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceVerdict {
    /// Not enough evidence either way.
    Undecided,
    /// Enough samples, dead ratio below the threshold.
    Trusted,
    /// Enough samples, dead ratio at or above the threshold: pongs from
    /// this peer are ignored.
    Blacklisted,
}

/// Tuning knobs for [`ReputationTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReputationParams {
    /// Resolved entries required before a verdict is reached.
    pub min_samples: u32,
    /// Dead-entry ratio at which a source is blacklisted.
    pub dead_ratio_threshold: f64,
    /// Provenance records kept per peer (oldest evicted beyond this).
    pub provenance_capacity: usize,
}

impl Default for ReputationParams {
    fn default() -> Self {
        ReputationParams {
            min_samples: 6,
            dead_ratio_threshold: 0.7,
            provenance_capacity: 1024,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SourceScore {
    dead: u32,
    resolved: u32,
}

/// Per-peer memory of where cache entries came from and how they fared.
///
/// # Examples
///
/// ```
/// use guess::addr::AddrAllocator;
/// use guess::reputation::{ReputationParams, ReputationTracker, SourceVerdict};
///
/// let mut alloc = AddrAllocator::new();
/// let (attacker, victim) = (alloc.allocate(), alloc.allocate());
/// let mut rep = ReputationTracker::new(ReputationParams::default());
/// for _ in 0..8 {
///     let fake = alloc.allocate();
///     rep.note_shared(attacker, fake);
///     rep.note_dead(fake);
/// }
/// assert_eq!(rep.verdict(attacker), SourceVerdict::Blacklisted);
/// assert_eq!(rep.verdict(victim), SourceVerdict::Undecided);
/// ```
#[derive(Debug, Clone)]
pub struct ReputationTracker {
    params: ReputationParams,
    /// address → the source that shared it (first teller wins).
    provenance: FxHashMap<PeerAddr, PeerAddr>,
    /// Insertion order ring for bounded eviction.
    order: std::collections::VecDeque<PeerAddr>,
    scores: FxHashMap<PeerAddr, SourceScore>,
    blacklist: FxHashSet<PeerAddr>,
}

impl ReputationTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new(params: ReputationParams) -> Self {
        // Maps start empty (not pre-sized): one tracker is embedded in
        // every peer, and all stay empty unless `distrust_pongs` is on.
        ReputationTracker {
            params,
            provenance: FxHashMap::default(),
            order: std::collections::VecDeque::new(),
            scores: FxHashMap::default(),
            blacklist: FxHashSet::default(),
        }
    }

    /// Records that `source` shared a pointer to `subject`. The first
    /// source to mention an address owns the blame for it.
    pub fn note_shared(&mut self, source: PeerAddr, subject: PeerAddr) {
        if self.provenance.contains_key(&subject) {
            return;
        }
        if self.provenance.len() >= self.params.provenance_capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.provenance.remove(&oldest);
            }
        }
        self.provenance.insert(subject, source);
        self.order.push_back(subject);
    }

    /// Records that a probe to `subject` found it dead; blames its
    /// source, if known. Returns the blamed source.
    pub fn note_dead(&mut self, subject: PeerAddr) -> Option<PeerAddr> {
        let source = self.provenance.get(&subject).copied()?;
        let score = {
            let s = self.scores.entry(source).or_default();
            s.dead += 1;
            s.resolved += 1;
            *s
        };
        self.maybe_blacklist(source, score);
        Some(source)
    }

    /// Records that a probe to `subject` reached a live peer; credits its
    /// source, if known.
    pub fn note_alive(&mut self, subject: PeerAddr) {
        if let Some(&source) = self.provenance.get(&subject) {
            let score = self.scores.entry(source).or_default();
            score.resolved += 1;
        }
    }

    fn maybe_blacklist(&mut self, source: PeerAddr, score: SourceScore) {
        if score.resolved >= self.params.min_samples {
            let ratio = f64::from(score.dead) / f64::from(score.resolved);
            if ratio >= self.params.dead_ratio_threshold {
                self.blacklist.insert(source);
            }
        }
    }

    /// The current verdict on `source`.
    #[must_use]
    pub fn verdict(&self, source: PeerAddr) -> SourceVerdict {
        if self.blacklist.contains(&source) {
            return SourceVerdict::Blacklisted;
        }
        match self.scores.get(&source) {
            Some(s) if s.resolved >= self.params.min_samples => SourceVerdict::Trusted,
            _ => SourceVerdict::Undecided,
        }
    }

    /// Whether pongs from `source` should be ignored.
    #[must_use]
    pub fn is_blacklisted(&self, source: PeerAddr) -> bool {
        self.blacklist.contains(&source)
    }

    /// Number of blacklisted sources so far.
    #[must_use]
    pub fn blacklisted_count(&self) -> usize {
        self.blacklist.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrAllocator;

    fn tracker() -> (ReputationTracker, AddrAllocator) {
        (
            ReputationTracker::new(ReputationParams::default()),
            AddrAllocator::new(),
        )
    }

    #[test]
    fn honest_source_becomes_trusted() {
        let (mut rep, mut alloc) = tracker();
        let source = alloc.allocate();
        for _ in 0..10 {
            let subject = alloc.allocate();
            rep.note_shared(source, subject);
            rep.note_alive(subject);
        }
        assert_eq!(rep.verdict(source), SourceVerdict::Trusted);
        assert!(!rep.is_blacklisted(source));
    }

    #[test]
    fn poisoner_gets_blacklisted() {
        let (mut rep, mut alloc) = tracker();
        let source = alloc.allocate();
        for _ in 0..8 {
            let subject = alloc.allocate();
            rep.note_shared(source, subject);
            assert_eq!(rep.note_dead(subject), Some(source));
        }
        assert_eq!(rep.verdict(source), SourceVerdict::Blacklisted);
        assert_eq!(rep.blacklisted_count(), 1);
    }

    #[test]
    fn mixed_source_below_threshold_stays_trusted() {
        let (mut rep, mut alloc) = tracker();
        let source = alloc.allocate();
        // 30% dead: below the 70% threshold.
        for i in 0..10 {
            let subject = alloc.allocate();
            rep.note_shared(source, subject);
            if i < 3 {
                rep.note_dead(subject);
            } else {
                rep.note_alive(subject);
            }
        }
        assert_eq!(rep.verdict(source), SourceVerdict::Trusted);
    }

    #[test]
    fn insufficient_evidence_is_undecided() {
        let (mut rep, mut alloc) = tracker();
        let source = alloc.allocate();
        let subject = alloc.allocate();
        rep.note_shared(source, subject);
        rep.note_dead(subject);
        assert_eq!(rep.verdict(source), SourceVerdict::Undecided);
    }

    #[test]
    fn first_teller_owns_the_blame() {
        let (mut rep, mut alloc) = tracker();
        let first = alloc.allocate();
        let second = alloc.allocate();
        let subject = alloc.allocate();
        rep.note_shared(first, subject);
        rep.note_shared(second, subject);
        assert_eq!(rep.note_dead(subject), Some(first));
    }

    #[test]
    fn unknown_subject_blames_nobody() {
        let (mut rep, mut alloc) = tracker();
        assert_eq!(rep.note_dead(alloc.allocate()), None);
    }

    #[test]
    fn provenance_is_bounded() {
        let params = ReputationParams {
            provenance_capacity: 4,
            ..ReputationParams::default()
        };
        let mut rep = ReputationTracker::new(params);
        let mut alloc = AddrAllocator::new();
        let source = alloc.allocate();
        let subjects: Vec<_> = (0..10).map(|_| alloc.allocate()).collect();
        for &s in &subjects {
            rep.note_shared(source, s);
        }
        // The earliest subjects were evicted: blaming them is a no-op.
        assert_eq!(rep.note_dead(subjects[0]), None);
        assert_eq!(rep.note_dead(subjects[9]), Some(source));
    }
}
