//! Probe payments — the paper's counter-measure to selfish probing.
//!
//! §3.3: *"One straightforward proposal is to have peers 'pay' for each
//! probe. Peers will then be motivated to probe as few peers as possible
//! to answer their queries. Such a solution does require a payment
//! mechanism, such as \[PPay\]."*
//!
//! This module models the economics without the cryptography: every peer
//! holds a credit balance; sending a probe costs one credit; answering a
//! probe earns one. Balances replenish slowly (a small allowance per
//! second) so honest query rates are unaffected, but a selfish peer
//! blasting 100-probe volleys drains its balance and is forced down to
//! the allowance rate — the incentive the paper wants.

use simkit::time::SimTime;

/// Parameters of the probe-payment economy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaymentParams {
    /// Credits a newborn peer starts with.
    pub initial_balance: f64,
    /// Credits accrued per second of uptime (the base allowance).
    pub allowance_per_sec: f64,
    /// Hard cap on hoarded credits.
    pub max_balance: f64,
    /// Credits earned by answering one probe.
    pub earn_per_answer: f64,
}

impl Default for PaymentParams {
    fn default() -> Self {
        PaymentParams {
            initial_balance: 200.0,
            allowance_per_sec: 1.0,
            max_balance: 600.0,
            earn_per_answer: 0.5,
        }
    }
}

/// Why a probe could not be paid for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientCredit;

impl std::fmt::Display for InsufficientCredit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "probe budget exhausted")
    }
}

impl std::error::Error for InsufficientCredit {}

/// A peer's probe-credit account.
///
/// # Examples
///
/// ```
/// use guess::payments::{PaymentParams, ProbeAccount};
/// use simkit::time::SimTime;
///
/// let mut acct = ProbeAccount::new(PaymentParams {
///     initial_balance: 2.0,
///     allowance_per_sec: 0.0,
///     ..PaymentParams::default()
/// }, SimTime::ZERO);
/// assert!(acct.pay_probe(SimTime::ZERO).is_ok());
/// assert!(acct.pay_probe(SimTime::ZERO).is_ok());
/// assert!(acct.pay_probe(SimTime::ZERO).is_err()); // broke
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ProbeAccount {
    params: PaymentParams,
    balance: f64,
    last_accrual: SimTime,
}

impl ProbeAccount {
    /// Opens an account at `now` with the configured starting balance.
    #[must_use]
    pub fn new(params: PaymentParams, now: SimTime) -> Self {
        ProbeAccount {
            params,
            balance: params.initial_balance,
            last_accrual: now,
        }
    }

    fn accrue(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_accrual).as_secs();
        self.balance =
            (self.balance + dt * self.params.allowance_per_sec).min(self.params.max_balance);
        self.last_accrual = self.last_accrual.max(now);
    }

    /// Current balance after accruing allowance up to `now`.
    pub fn balance(&mut self, now: SimTime) -> f64 {
        self.accrue(now);
        self.balance
    }

    /// Pays for one outgoing probe.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientCredit`] when the balance (after accrual) is
    /// below one credit; the probe must not be sent.
    pub fn pay_probe(&mut self, now: SimTime) -> Result<(), InsufficientCredit> {
        self.accrue(now);
        if self.balance < 1.0 {
            return Err(InsufficientCredit);
        }
        self.balance -= 1.0;
        Ok(())
    }

    /// Credits the account for answering someone else's probe.
    pub fn earn_answer(&mut self, now: SimTime) {
        self.accrue(now);
        self.balance = (self.balance + self.params.earn_per_answer).min(self.params.max_balance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn starts_with_initial_balance() {
        let mut a = ProbeAccount::new(PaymentParams::default(), t(0.0));
        assert_eq!(a.balance(t(0.0)), 200.0);
    }

    #[test]
    fn probes_cost_one_credit() {
        let params = PaymentParams {
            initial_balance: 3.0,
            allowance_per_sec: 0.0,
            ..PaymentParams::default()
        };
        let mut a = ProbeAccount::new(params, t(0.0));
        assert!(a.pay_probe(t(0.0)).is_ok());
        assert!(a.pay_probe(t(0.0)).is_ok());
        assert!(a.pay_probe(t(0.0)).is_ok());
        assert_eq!(a.pay_probe(t(0.0)), Err(InsufficientCredit));
    }

    #[test]
    fn allowance_refills_over_time() {
        let params = PaymentParams {
            initial_balance: 0.0,
            allowance_per_sec: 2.0,
            ..PaymentParams::default()
        };
        let mut a = ProbeAccount::new(params, t(0.0));
        assert!(a.pay_probe(t(0.0)).is_err());
        assert!(a.pay_probe(t(1.0)).is_ok(), "2 credits accrued after 1s");
        assert!(a.pay_probe(t(1.0)).is_ok());
        assert!(a.pay_probe(t(1.0)).is_err());
    }

    #[test]
    fn balance_is_capped() {
        let params = PaymentParams {
            initial_balance: 10.0,
            allowance_per_sec: 100.0,
            max_balance: 50.0,
            ..PaymentParams::default()
        };
        let mut a = ProbeAccount::new(params, t(0.0));
        assert_eq!(a.balance(t(1000.0)), 50.0);
    }

    #[test]
    fn answering_earns_credit() {
        let params = PaymentParams {
            initial_balance: 0.0,
            allowance_per_sec: 0.0,
            earn_per_answer: 0.5,
            ..PaymentParams::default()
        };
        let mut a = ProbeAccount::new(params, t(0.0));
        a.earn_answer(t(0.0));
        a.earn_answer(t(0.0));
        assert!(a.pay_probe(t(0.0)).is_ok(), "two answers fund one probe");
        assert!(a.pay_probe(t(0.0)).is_err());
    }

    #[test]
    fn time_never_runs_backwards_in_accrual() {
        let mut a = ProbeAccount::new(PaymentParams::default(), t(100.0));
        // An accrual query with an earlier timestamp must not panic or
        // mint credit.
        let before = a.balance(t(100.0));
        let after = a.balance(t(50.0));
        assert_eq!(before, after);
    }
}
