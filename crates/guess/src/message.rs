//! GUESS wire messages and probe outcomes.
//!
//! The protocol has two interaction kinds (§2): maintenance *pings*, which
//! elicit a [`Pong`], and query *probes*, which elicit a query response
//! bundled with a pong. Because GUESS runs over UDP, the absence of any
//! reply within the timeout — whether the target is dead or silently
//! dropping excess load — looks identical to the sender.

use workload::query::QueryTarget;

use crate::entry::CacheEntry;

/// A pong: the cache-entry sharing payload attached to every reply.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pong {
    /// Up to `PongSize` entries chosen by the responder's pong policy.
    pub entries: Vec<CacheEntry>,
}

impl Pong {
    /// An empty pong (e.g. from a peer with an empty cache).
    #[must_use]
    pub fn empty() -> Self {
        Pong {
            entries: Vec::new(),
        }
    }
}

/// A query probe sent to a single target peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryProbe {
    /// What the querying peer is searching for.
    pub target: QueryTarget,
}

/// What the *sender* observes after one probe.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeReply {
    /// The target processed the query and replied.
    Answered {
        /// Results found for the query (0 or 1 under the item model).
        results: u32,
        /// The attached pong.
        pong: Pong,
    },
    /// No reply before the timeout: the target is dead...
    TimedOutDead,
    /// ...or the target was overloaded and refused the probe. In a real
    /// deployment a refusal may carry an explicit "back off" notice; with
    /// plain drops it is indistinguishable from death.
    Refused,
}

impl ProbeReply {
    /// True when the probe reached a live, willing responder.
    #[must_use]
    pub fn is_answered(&self) -> bool {
        matches!(self, ProbeReply::Answered { .. })
    }
}

/// A maintenance ping reply.
#[derive(Debug, Clone, PartialEq)]
pub enum PingReply {
    /// The neighbor is alive and shared some cache entries.
    Alive(Pong),
    /// No reply: the neighbor is gone (or refused under overload).
    TimedOut,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrAllocator;
    use simkit::time::SimTime;
    use workload::content::ItemId;

    #[test]
    fn empty_pong_has_no_entries() {
        assert!(Pong::empty().entries.is_empty());
        assert_eq!(Pong::default(), Pong::empty());
    }

    #[test]
    fn answered_predicate() {
        let answered = ProbeReply::Answered {
            results: 1,
            pong: Pong::empty(),
        };
        assert!(answered.is_answered());
        assert!(!ProbeReply::TimedOutDead.is_answered());
        assert!(!ProbeReply::Refused.is_answered());
    }

    #[test]
    fn probe_carries_target() {
        let p = QueryProbe {
            target: QueryTarget { item: ItemId(7) },
        };
        assert_eq!(p.target.item, ItemId(7));
    }

    #[test]
    fn pong_round_trips_entries() {
        let mut alloc = AddrAllocator::new();
        let e = CacheEntry::new(alloc.allocate(), SimTime::ZERO, 3);
        let pong = Pong { entries: vec![e] };
        assert_eq!(pong.entries.len(), 1);
        assert_eq!(pong.entries[0].num_files(), 3);
    }
}
