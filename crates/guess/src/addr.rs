//! Peer addressing.
//!
//! Every peer *instance* that ever joins the network gets a unique
//! [`PeerAddr`] — the moral equivalent of an IP address in the paper's
//! figures. When a peer dies its address stays allocated (and stays in
//! other peers' caches) but resolves to a dead peer, exactly the situation
//! GUESS cache maintenance has to cope with.

use std::fmt;

/// A unique address for one peer instance.
///
/// Addresses are allocated monotonically by [`AddrAllocator`] and never
/// reused, so an address held in a stale cache entry always identifies the
/// same (possibly long-dead) peer. Addresses are 32-bit: a [`CacheEntry`]
/// (`crate::entry::CacheEntry`) stays 24 bytes and peer tables stay dense
/// even at 10^6 slots; u32 still leaves room for ~4.3 billion peer
/// instances over a run's lifetime, far beyond any churn schedule the
/// simulators can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerAddr(u32);

impl PeerAddr {
    /// The raw address value (useful as a dense index into peer tables).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw constructor for crate-internal plumbing (arena filler slots).
    /// Never hand one of these out as a real peer identity — only
    /// [`AddrAllocator`] mints those.
    pub(crate) const fn from_raw(raw: u32) -> Self {
        PeerAddr(raw)
    }
}

impl fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer@{}", self.0)
    }
}

/// Monotonic allocator of [`PeerAddr`]s.
///
/// # Examples
///
/// ```
/// use guess::addr::AddrAllocator;
///
/// let mut alloc = AddrAllocator::new();
/// let a = alloc.allocate();
/// let b = alloc.allocate();
/// assert_ne!(a, b);
/// assert_eq!(alloc.allocated(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddrAllocator {
    next: u32,
}

impl AddrAllocator {
    /// Creates an allocator starting at address zero.
    #[must_use]
    pub fn new() -> Self {
        AddrAllocator { next: 0 }
    }

    /// Allocates the next address.
    ///
    /// # Panics
    ///
    /// Panics if the 32-bit address space is exhausted (would require
    /// ~4.3 billion peer instances in one run).
    pub fn allocate(&mut self) -> PeerAddr {
        let addr = PeerAddr(self.next);
        self.next = self
            .next
            .checked_add(1)
            .expect("PeerAddr space exhausted (u32)");
        addr
    }

    /// Number of addresses allocated so far.
    #[must_use]
    pub fn allocated(&self) -> usize {
        self.next as usize
    }
}

/// A network *slot*: the paper keeps the population constant by birthing a
/// replacement peer whenever one dies, so each of the `NetworkSize` slots
/// is occupied by a succession of peer instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u32);

impl SlotId {
    /// The slot as a dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_unique_and_monotone() {
        let mut alloc = AddrAllocator::new();
        let addrs: Vec<PeerAddr> = (0..100).map(|_| alloc.allocate()).collect();
        for w in addrs.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(alloc.allocated(), 100);
    }

    #[test]
    fn index_round_trips() {
        let mut alloc = AddrAllocator::new();
        alloc.allocate();
        let a = alloc.allocate();
        assert_eq!(a.index(), 1);
    }

    #[test]
    fn display_formats() {
        let mut alloc = AddrAllocator::new();
        assert_eq!(alloc.allocate().to_string(), "peer@0");
        assert_eq!(SlotId(3).to_string(), "slot#3");
        assert_eq!(SlotId(3).index(), 3);
    }
}
