//! Lane-partitioned parallel runner: the GUESS engine on
//! [`simkit::lanes::LaneKernel`].
//!
//! The population is split into `cfg.run.lanes` seed-addressed lanes,
//! each a full independent [`GuessSim`] over its share of the slots
//! (churn, pings, pushes, and metric sweeps all stay lane-local).
//! Queries couple the lanes: when a query runs its local candidate pool
//! dry short of `NumDesiredResults`, it *spills* — it probes one random
//! peer in each of up to `ParallelProbes` other lanes and parks until
//! the pongs come back one round-trip later. That round-trip
//! ([`REMOTE_RTT_ROUNDS`] probe intervals each way) is the kernel's
//! lookahead: no event crosses a lane boundary sooner, so lanes can run
//! a whole window apart without seeing each other's state.
//!
//! Determinism: every lane derives its seed and RNG streams from
//! `(master seed, lane index)`, cross-lane batches are merged in a
//! fixed order at window barriers, and per-lane collectors are absorbed
//! in lane order — so the report is a pure function of `(seed, lanes)`,
//! byte-identical for any worker-thread count. `lanes = 1` routes to
//! the ordinary serial [`Runnable::run`], untouched.

use simkit::lanes::{LaneCtx, LaneKernel, LaneSimulation};
use simkit::rng::derive_seed;
use simkit::time::SimDuration;
use simkit::trace::NullSink;

use super::query_exec::QueryExec;
use super::*;

/// Cross-lane round-trip, in units of `ProbeInterval`: a spill probe
/// reaches the remote lane this many intervals after it is sent, and
/// the pong takes as long to come back. Five intervals ≈ the paper's
/// notion of a distant, not-yet-cached peer.
pub(crate) const REMOTE_RTT_ROUNDS: f64 = 5.0;

/// A query parked while its cross-lane spill probes are in flight.
#[derive(Debug, Clone, Copy)]
struct PendingQuery {
    ex: QueryExec,
    /// Response time already accrued by the local probe loop (secs).
    local_response: f64,
    started: SimTime,
    /// Whether the query started after warm-up (metrics eligibility is
    /// decided at start, exactly like the serial path).
    measured: bool,
    expected: u32,
    received: u32,
}

/// One lane: a self-contained [`GuessSim`] plus the spill plane that
/// couples it to its siblings.
struct GuessLane {
    sim: GuessSim,
    /// One-way cross-lane latency.
    rtt: SimDuration,
    pending: Vec<Option<PendingQuery>>,
    free: Vec<u32>,
}

impl GuessLane {
    fn park(&mut self, p: PendingQuery) -> u32 {
        if let Some(id) = self.free.pop() {
            self.pending[id as usize] = Some(p);
            id
        } else {
            self.pending.push(Some(p));
            (self.pending.len() - 1) as u32
        }
    }

    /// Lane-aware burst: same shape as the serial `on_burst`, but each
    /// query may spill across lanes instead of concluding immediately.
    fn on_burst<T: TraceSink>(
        &mut self,
        slot: SlotId,
        addr: PeerAddr,
        now: SimTime,
        lctx: &mut LaneCtx<'_, Event, T>,
    ) {
        if !self.sim.is_current(slot, addr) {
            return;
        }
        let burst = self.sim.workload.sample_burst_size(&mut self.sim.rng_query);
        for _ in 0..burst {
            self.run_query(addr, now, lctx);
        }
        let gap = self.sim.workload.sample_burst_gap(&mut self.sim.rng_query);
        lctx.inner()
            .schedule(now + gap, Event::Burst { slot, addr });
    }

    /// Runs one query: local probe loop first, then — if unsatisfied —
    /// spill probes into up to `ParallelProbes` sibling lanes.
    fn run_query<T: TraceSink>(
        &mut self,
        prober: PeerAddr,
        now: SimTime,
        lctx: &mut LaneCtx<'_, Event, T>,
    ) {
        let measured = lctx.after_warmup(now);
        let ex = self.sim.execute_query_core(prober, now, lctx.inner());
        let local_response = ex.rounds.ceil() * self.sim.cfg.protocol.probe_interval.as_secs();
        let lanes = lctx.lane_count();
        let spill_width = self.sim.rt.parallel_probes.min(lanes as usize - 1);
        if ex.results >= ex.desired || spill_width == 0 {
            self.sim
                .conclude_query(&ex, now, local_response, measured, lctx.inner());
            return;
        }
        let id = self.park(PendingQuery {
            ex,
            local_response,
            started: now,
            measured,
            expected: spill_width as u32,
            received: 0,
        });
        let me = lctx.lane();
        for _ in 0..spill_width {
            // Uniform pick over the *other* lanes (repeats allowed — a
            // distant region may be probed twice, as in the flat model).
            let mut dst = self.sim.rng_remote.below(lanes as usize - 1) as u32;
            if dst >= me {
                dst += 1;
            }
            lctx.send(
                dst,
                now + self.rtt,
                Event::RemoteProbe {
                    src_lane: me,
                    pending: id,
                    target: ex.target,
                },
            );
        }
        self.sim.metrics.counters_mut().incr("remote_spills");
    }

    /// A sibling lane's spill probe arrives: probe one random resident
    /// and send the outcome back. Lane residents are always alive
    /// (deaths rebirth in place), so the serial loop's `Dead` outcome
    /// cannot occur here.
    fn on_remote_probe<T: TraceSink>(
        &mut self,
        src_lane: u32,
        pending: u32,
        target: QueryTarget,
        now: SimTime,
        lctx: &mut LaneCtx<'_, Event, T>,
    ) {
        let sim = &mut self.sim;
        let victim = sim.slots[sim.rng_remote.below(sim.slots.len())];
        sim.peers[victim.index()].note_probe_received();
        let behavior = sim.peers[victim.index()].behavior();
        let outcome = if behavior == Behavior::Good
            && sim.peers[victim.index()].capacity_mut().admit(now) == Admission::Refused
        {
            RemoteOutcome::Refused
        } else if behavior == Behavior::Good
            && sim
                .libs
                .contains(sim.peers[victim.index()].library(), target.item)
        {
            RemoteOutcome::Hit
        } else {
            RemoteOutcome::NoHit
        };
        sim.metrics.counters_mut().incr("remote_probes");
        lctx.send(
            src_lane,
            now + self.rtt,
            Event::RemotePong { pending, outcome },
        );
    }

    /// A pong for one of our parked queries. The last expected pong
    /// concludes the query with the full local + cross-lane response.
    fn on_remote_pong<T: TraceSink>(
        &mut self,
        pending: u32,
        outcome: RemoteOutcome,
        now: SimTime,
        lctx: &mut LaneCtx<'_, Event, T>,
    ) {
        let p = self.pending[pending as usize]
            .as_mut()
            .expect("pong for a query that is not parked");
        match outcome {
            RemoteOutcome::Refused => p.ex.refused += 1,
            RemoteOutcome::NoHit => p.ex.good += 1,
            RemoteOutcome::Hit => {
                p.ex.good += 1;
                p.ex.results += 1;
            }
        }
        p.received += 1;
        if p.received == p.expected {
            let p = self.pending[pending as usize].take().expect("just checked");
            self.free.push(pending);
            let response = p.local_response + (now - p.started).as_secs();
            self.sim
                .conclude_query(&p.ex, now, response, p.measured, lctx.inner());
        }
    }

    /// Concludes every still-parked query at the end-of-run horizon, in
    /// slab order, charging the full round-trip it was waiting for.
    fn flush_pending<T: TraceSink>(&mut self, end: SimTime, ctx: &mut SimCtx<'_, Event, T>) {
        let rtt_secs = self.rtt.as_secs();
        for id in 0..self.pending.len() {
            let Some(p) = self.pending[id].take() else {
                continue;
            };
            let response = p.local_response + 2.0 * rtt_secs;
            self.sim.metrics.counters_mut().incr("remote_flushed");
            self.sim
                .conclude_query(&p.ex, end, response, p.measured, ctx);
        }
    }
}

impl<T: TraceSink> LaneSimulation<T> for GuessLane {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, lctx: &mut LaneCtx<'_, Event, T>) {
        match event {
            Event::Burst { slot, addr } => self.on_burst(slot, addr, now, lctx),
            Event::RemoteProbe {
                src_lane,
                pending,
                target,
            } => self.on_remote_probe(src_lane, pending, target, now, lctx),
            Event::RemotePong { pending, outcome } => {
                self.on_remote_pong(pending, outcome, now, lctx);
            }
            // Churn, pings, and push maintenance are lane-local: the
            // serial handlers run unmodified against this lane's state.
            other => Simulation::handle(&mut self.sim, now, other, lctx.inner()),
        }
    }

    fn sample(&mut self, now: SimTime) {
        Simulation::<T>::sample(&mut self.sim, now);
    }

    fn live_peers(&self) -> u64 {
        Simulation::<T>::live_peers(&self.sim)
    }
}

/// Runs `cfg` on the lane-partitioned parallel kernel with up to
/// `threads` worker threads.
///
/// With `cfg.run.lanes <= 1` this is exactly [`Runnable::run`] on a
/// serial [`GuessSim`] — byte-identical to every golden. Otherwise the
/// report is a pure function of `(seed, lanes)`: any `threads` value
/// produces the same bytes.
///
/// # Errors
///
/// Returns the validation error if `cfg` is inconsistent.
pub fn run_lanes(cfg: Config, threads: usize) -> Result<RunReport, ConfigError> {
    cfg.validate()?;
    let l = cfg.run.lanes;
    if l <= 1 {
        return Ok(GuessSim::new(cfg)?.run());
    }

    let n = cfg.system.network_size;
    let rtt = cfg.protocol.probe_interval * REMOTE_RTT_ROUNDS;
    // Lookahead: with queries off nothing ever crosses a lane boundary,
    // so the whole run is one window and lanes are fully independent.
    let window = if cfg.run.simulate_queries {
        rtt
    } else {
        cfg.run.duration
    };
    let params = KernelParams::new(cfg.run.duration)
        .with_warmup(cfg.run.warmup)
        .with_sampling(cfg.run.sample_interval);

    let master = cfg.run.seed;
    let base = n / l;
    let rem = n % l;
    let mut lanes: Vec<GuessLane> = Vec::with_capacity(l);
    for i in 0..l {
        let lane_n = base + usize::from(i < rem);
        let mut lane_cfg = cfg.clone();
        lane_cfg.system.network_size = lane_n;
        lane_cfg.run.seed = derive_seed(master, "guess-lane", i as u64);
        lane_cfg.run.lanes = 1;
        lane_cfg.run.cache_seed_size = cfg.run.cache_seed_size.min(lane_n.saturating_sub(1));
        lane_cfg.run.metrics_sample_size = (cfg.run.metrics_sample_size / l).max(1);
        let sim = GuessSim::new(lane_cfg)?;
        lanes.push(GuessLane {
            sim,
            rtt,
            pending: Vec::new(),
            free: Vec::new(),
        });
    }

    let sinks = (0..l).map(|_| NullSink).collect();
    let mut kernel: LaneKernel<Event, NullSink> = LaneKernel::new(params, window, sinks);
    for (i, lane) in lanes.iter_mut().enumerate() {
        lane.sim.schedule_initial(&mut kernel.ctx(i));
    }
    kernel.run(&mut lanes, threads.max(1));

    // Wrap-up, strictly in lane order so the merged report is
    // independent of which thread ran which lane.
    let end = kernel.params().end;
    let mut collector = MetricsCollector::new();
    for (i, mut lane) in lanes.into_iter().enumerate() {
        lane.flush_pending(end, &mut kernel.ctx(i));
        let mut sim = lane.sim;
        let slots = std::mem::take(&mut sim.slots);
        for &addr in &slots {
            let p = &sim.peers[addr.index()];
            if p.is_alive() {
                sim.metrics.record_load(p.probes_received());
            }
        }
        collector.absorb(sim.metrics);
    }
    collector.counters_mut().add("lanes", l as u64);
    let events_processed = kernel.events_processed();
    let mut report = collector.finish();
    report.events_processed = events_processed;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::time::SimDuration;

    fn tiny(seed: u64, lanes: usize) -> Config {
        let mut cfg = Config::small_test(seed);
        cfg.run.duration = SimDuration::from_secs(200.0);
        cfg.run.warmup = SimDuration::from_secs(50.0);
        cfg.run.lanes = lanes;
        cfg
    }

    #[test]
    fn one_lane_is_exactly_the_serial_run() {
        for seed in [1u64, 7, 42] {
            let serial = GuessSim::new(tiny(seed, 1)).unwrap().run();
            let laned = run_lanes(tiny(seed, 1), 4).unwrap();
            assert_eq!(serial, laned, "seed {seed}");
        }
    }

    #[test]
    fn lane_runs_are_identical_across_thread_counts() {
        let baseline = run_lanes(tiny(3, 4), 1).unwrap();
        for threads in 2..=6 {
            let run = run_lanes(tiny(3, 4), threads).unwrap();
            assert_eq!(baseline, run, "threads={threads}");
        }
    }

    #[test]
    fn lane_count_is_part_of_the_trajectory() {
        let two = run_lanes(tiny(5, 2), 2).unwrap();
        let four = run_lanes(tiny(5, 4), 2).unwrap();
        assert_ne!(two, four, "lane count must address the run");
    }

    #[test]
    fn lane_mode_produces_queries_and_spills() {
        let report = run_lanes(tiny(9, 4), 4).unwrap();
        assert!(report.queries > 0, "queries must execute");
        assert!(
            report.counters.get("remote_spills") > 0,
            "small lanes should run dry and spill"
        );
        assert_eq!(report.counters.get("lanes"), 4);
        assert!(report.events_processed > 0);
    }

    #[test]
    fn zero_lanes_is_rejected() {
        let mut cfg = tiny(1, 1);
        cfg.run.lanes = 0;
        assert!(run_lanes(cfg, 1).is_err());
    }

    #[test]
    fn queries_off_runs_lanes_independently() {
        let mut cfg = tiny(11, 4);
        cfg.run.simulate_queries = false;
        let a = run_lanes(cfg.clone(), 1).unwrap();
        let b = run_lanes(cfg, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.queries, 0);
    }
}
