//! Scenario interventions: the [`Intervenable`] side of `GuessSim`.
//!
//! Split out of the main engine module like `query_exec`; this is still
//! the same `GuessSim`. Every intervention routes through the engine's
//! existing machinery — joins and leaves through the churn paths
//! ([`GuessSim::birth_peer`] / `on_death`), flash crowds through
//! [`GuessSim::execute_query`], parameter flips through
//! [`Config::validate`] — and mutates only the [`super::Runtime`] side
//! of the config/state split. `self.cfg` is never written after
//! `GuessSim::new`.

use simkit::scenario::{Intervenable, Intervention, Param, ScenarioError};

use super::*;

impl GuessSim {
    /// Grows the network by `count` newborn slots. Each newborn goes
    /// through the ordinary birth path (same RNG streams, same cache
    /// seeding as a churn replacement) and gets its death / ping /
    /// burst events scheduled.
    fn mass_join<T: TraceSink>(
        &mut self,
        count: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        for _ in 0..count {
            let slot = SlotId(self.slots.len() as u32);
            self.bad.grow_to(self.slots.len() + 1);
            self.push.grow_to(self.slots.len() + 1);
            let newborn = self.birth_peer(slot, now);
            self.slots.push(newborn);
            // Seed the newborn's cache from a random live friend,
            // exactly like a churn replacement.
            if let Some(friend) = self
                .random_live_peer(Some(newborn))
                .filter(|&f| self.reachable(newborn, f))
            {
                let mut entries = std::mem::take(&mut self.entry_scratch);
                entries.clear();
                let fh = self.peers[friend.index()].cache();
                entries.extend_from_slice(self.caches.entries(fh));
                let policy = self.cfg.protocol.cache_replacement;
                let nh = self.peers[newborn.index()].cache();
                for &e in &entries {
                    if e.addr() != newborn {
                        let outcome = self.caches.offer(nh, e, policy, &mut self.rng_policy);
                        self.trace_eviction(ctx, now, newborn, outcome);
                        if !matches!(outcome, InsertOutcome::Rejected) {
                            self.push_register(newborn, e.addr());
                        }
                    }
                }
                self.entry_scratch = entries;
            }
            self.schedule_peer_events(slot, newborn, now, false, ctx);
        }
    }

    /// Kills `count` uniformly chosen live peers through the normal
    /// death path (replacements included — the population stays
    /// constant; the wave's damage is the mass cache cold-start).
    fn mass_leave<T: TraceSink>(
        &mut self,
        count: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        for _ in 0..count {
            let s = self.rng_churn.below(self.slots.len());
            let slot = SlotId(s as u32);
            let addr = self.slots[s];
            // The victim's originally scheduled death event becomes
            // stale and is ignored by the `is_current` guard.
            self.on_death(slot, addr, now, ctx);
        }
    }

    /// Injects `queries` extra queries immediately, from uniformly
    /// chosen live sources, through the normal query executor.
    fn flash_crowd<T: TraceSink>(
        &mut self,
        queries: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        for _ in 0..queries {
            let src = self.slots[self.rng_query.below(self.slots.len())];
            self.execute_query(src, now, ctx);
        }
    }

    /// Applies a parameter flip: overlays the current runtime values
    /// plus the flip onto a copy of the immutable config, re-validates
    /// through [`Config::validate`], and only then installs the new
    /// value into the runtime state.
    fn param_flip(&mut self, param: &Param) -> Result<(), ScenarioError> {
        let mut probe = self.cfg.clone();
        probe.system.query_rate = self.rt.query_rate;
        probe.system.bad_peer_fraction = self.rt.bad_peer_fraction;
        probe.protocol.ping_interval = self.rt.ping_interval;
        probe.protocol.parallel_probes = self.rt.parallel_probes;
        probe.protocol.maintenance_mode = self.rt.maintenance;
        match *param {
            Param::QueryRate(r) => probe.system.query_rate = r,
            Param::BadPeerFraction(f) => probe.system.bad_peer_fraction = f,
            Param::PingInterval(i) => probe.protocol.ping_interval = i,
            Param::ParallelProbes(k) => probe.protocol.parallel_probes = k,
            Param::MaintenanceMode(m) => probe.protocol.maintenance_mode = m,
            _ => {
                return Err(ScenarioError::Unsupported {
                    engine: "guess",
                    action: param.name(),
                })
            }
        }
        probe
            .validate()
            .map_err(|e| ScenarioError::InvalidParam(e.to_string()))?;
        if probe.system.query_rate != self.rt.query_rate {
            self.workload = QueryWorkload::with_rate(probe.system.query_rate)
                .map_err(|e| ScenarioError::InvalidParam(e.to_string()))?;
        }
        self.rt.query_rate = probe.system.query_rate;
        self.rt.bad_peer_fraction = probe.system.bad_peer_fraction;
        self.rt.ping_interval = probe.protocol.ping_interval;
        self.rt.parallel_probes = probe.protocol.parallel_probes;
        self.rt.maintenance = probe.protocol.maintenance_mode;
        Ok(())
    }
}

impl<T: TraceSink> Intervenable<T> for GuessSim {
    fn intervene(
        &mut self,
        now: SimTime,
        action: &Intervention,
        ctx: &mut SimCtx<'_, Event, T>,
    ) -> Result<(), ScenarioError> {
        self.metrics.counters_mut().incr("interventions");
        match *action {
            Intervention::MassJoin { count } => self.mass_join(count, now, ctx),
            Intervention::MassLeave { count } => self.mass_leave(count, now, ctx),
            Intervention::FlashCrowd { queries } => self.flash_crowd(queries, now, ctx),
            Intervention::ParamFlip(ref param) => self.param_flip(param)?,
            Intervention::Partition { groups } => {
                if groups < 2 {
                    return Err(ScenarioError::BadPartition { groups });
                }
                self.rt.partition = Some(groups);
            }
            Intervention::Heal => self.rt.partition = None,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::scenario::Scenario;
    use simkit::time::SimDuration;

    fn tiny(seed: u64) -> Config {
        let mut cfg = Config::small_test(seed);
        cfg.run.duration = SimDuration::from_secs(200.0);
        cfg.run.warmup = SimDuration::from_secs(50.0);
        cfg
    }

    #[test]
    fn empty_scenario_equals_plain_run() {
        let plain = GuessSim::new(tiny(31)).unwrap().run();
        let scen = GuessSim::new(tiny(31))
            .unwrap()
            .run_scenario(&Scenario::new())
            .unwrap();
        assert_eq!(plain.queries, scen.queries);
        assert_eq!(plain.unsatisfied, scen.unsatisfied);
        assert_eq!(plain.loads, scen.loads);
        assert_eq!(plain.counters.get("births"), scen.counters.get("births"));
    }

    #[test]
    fn mass_join_grows_the_population() {
        let n = tiny(32).system.network_size;
        let scenario = Scenario::new().at(100.0).mass_join(40);
        let report = GuessSim::new(tiny(32))
            .unwrap()
            .run_scenario(&scenario)
            .unwrap();
        let baseline = GuessSim::new(tiny(32)).unwrap().run();
        assert_eq!(report.counters.get("interventions"), 1);
        assert!(
            report.counters.get("births") >= baseline.counters.get("births") + 40,
            "join wave must add at least 40 births over the {n}-peer baseline"
        );
    }

    #[test]
    fn mass_leave_forces_a_death_wave() {
        // Drop churn to near zero so every death is the scenario's.
        let mut cfg = tiny(33);
        cfg.system.lifespan_multiplier = 1000.0;
        let scenario = Scenario::new().at(100.0).mass_leave(30);
        let report = GuessSim::new(cfg.clone())
            .unwrap()
            .run_scenario(&scenario)
            .unwrap();
        let baseline = GuessSim::new(cfg).unwrap().run();
        assert_eq!(baseline.counters.get("deaths"), 0, "baseline is churnless");
        assert_eq!(report.counters.get("deaths"), 30, "exactly the wave");
        assert_eq!(
            report.counters.get("births"),
            report.counters.get("deaths") + 120,
            "every victim is replaced"
        );
    }

    #[test]
    fn flash_crowd_injects_queries() {
        // The flash lands after warm-up, so all 200 injected queries
        // are recorded on top of the organic ones (which diverge from
        // the baseline only by RNG-stream noise).
        let scenario = Scenario::new().at(100.0).flash_crowd(200);
        let report = GuessSim::new(tiny(34))
            .unwrap()
            .run_scenario(&scenario)
            .unwrap();
        assert!(
            report.queries >= 200,
            "flash crowd queries must be recorded: {}",
            report.queries
        );
        assert_eq!(report.counters.get("interventions"), 1);
    }

    #[test]
    fn param_flip_revalidates() {
        let bad = Scenario::new().at(100.0).param_flip(Param::QueryRate(-1.0));
        let err = GuessSim::new(tiny(35))
            .unwrap()
            .run_scenario(&bad)
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidParam(_)));

        let unsupported = Scenario::new().at(100.0).param_flip(Param::Fanout(4));
        let err = GuessSim::new(tiny(35))
            .unwrap()
            .run_scenario(&unsupported)
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Unsupported {
                engine: "guess",
                action: "fanout",
            }
        );
    }

    #[test]
    fn maintenance_mode_flips_mid_run_via_the_dsl() {
        let mut cfg = tiny(43);
        cfg.system.lifespan_multiplier = 0.1; // churn so deaths trigger pushes
        let scenario = Scenario::new()
            .at(60.0)
            .param_flip(Param::MaintenanceMode(MaintenanceMode::Push));
        let report = GuessSim::new(cfg.clone())
            .unwrap()
            .run_scenario(&scenario)
            .unwrap();
        assert_eq!(report.counters.get("interventions"), 1);
        assert!(
            report.counters.get("push_invalidations") + report.counters.get("push_refreshes") > 0,
            "push traffic must flow after the flip"
        );
        let baseline = GuessSim::new(cfg).unwrap().run();
        assert_eq!(
            baseline.counters.get("push_invalidations"),
            0,
            "the pull default pushes nothing"
        );
        assert_eq!(baseline.counters.get("push_refreshes"), 0);
    }

    #[test]
    fn maintenance_flip_installs_and_invalid_flip_leaves_runtime_untouched() {
        let mut sim = GuessSim::new(tiny(44)).unwrap();
        assert_eq!(sim.rt.maintenance, MaintenanceMode::Pull);
        sim.param_flip(&Param::MaintenanceMode(MaintenanceMode::Hybrid))
            .unwrap();
        assert_eq!(sim.rt.maintenance, MaintenanceMode::Hybrid);
        // A rejected flip must not install anything: the probe config
        // fails validation before any runtime field is written.
        let err = sim.param_flip(&Param::QueryRate(-3.0)).unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidParam(_)));
        assert_eq!(sim.rt.maintenance, MaintenanceMode::Hybrid);
        assert_eq!(sim.rt.query_rate, tiny(44).system.query_rate);
    }

    #[test]
    fn attack_onset_flip_births_malicious_peers() {
        let mut cfg = tiny(36);
        cfg.system.lifespan_multiplier = 0.2; // churn fast enough to matter
        let scenario = Scenario::new()
            .at(60.0)
            .param_flip(Param::BadPeerFraction(0.8));
        let report = GuessSim::new(cfg).unwrap().run_scenario(&scenario).unwrap();
        assert!(
            report.good_entries.is_some(),
            "cache health sampling still runs"
        );
    }

    #[test]
    fn partition_starves_cross_group_probes_until_heal() {
        let partitioned = Scenario::new().at(60.0).partition(2);
        let healed = Scenario::new().at(60.0).partition(2).at(130.0).heal();
        let p = GuessSim::new(tiny(37))
            .unwrap()
            .run_scenario(&partitioned)
            .unwrap();
        let h = GuessSim::new(tiny(37))
            .unwrap()
            .run_scenario(&healed)
            .unwrap();
        let baseline = GuessSim::new(tiny(37)).unwrap().run();
        assert!(
            p.unsatisfaction() >= baseline.unsatisfaction(),
            "a partition cannot make satisfaction better: {:.3} vs {:.3}",
            p.unsatisfaction(),
            baseline.unsatisfaction()
        );
        assert!(
            h.unsatisfaction() <= p.unsatisfaction(),
            "healing cannot be worse than staying partitioned: {:.3} vs {:.3}",
            h.unsatisfaction(),
            p.unsatisfaction()
        );
    }

    #[test]
    fn bad_partition_spec_is_rejected() {
        let scenario = Scenario::new().at(60.0).partition(1);
        let err = GuessSim::new(tiny(38))
            .unwrap()
            .run_scenario(&scenario)
            .unwrap_err();
        assert_eq!(err, ScenarioError::BadPartition { groups: 1 });
    }
}
