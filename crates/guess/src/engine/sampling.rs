//! Periodic measurement snapshots, driven by the kernel's sample tick
//! (see [`simkit::sim::KernelParams::with_sampling`]).
//!
//! Both sweeps are exhaustive up to `metrics_sample_threshold` slots and
//! switch to seeded stride sampling beyond it: visit every `stride`-th
//! slot starting from a random phase, where `stride = n / sample_size`.
//! A strided sample is uniform over slots (each slot is visited with
//! probability `1/stride`), costs one RNG draw per sweep, and — unlike a
//! reservoir — keeps the visit order identical to the exhaustive sweep,
//! so at `stride == 1` the sampled path reproduces the exhaustive
//! numbers bit for bit. Runs at or below the threshold never draw from
//! the metrics stream at all, which keeps small-N reports byte-identical
//! whether or not sampling is configured.

use super::*;

impl GuessSim {
    /// The `(phase, stride)` plan for one sweep, or `None` for an
    /// exhaustive sweep. Draws the phase from the metrics stream only
    /// when sampling engages.
    fn metrics_stride(&mut self) -> Option<(usize, usize)> {
        let n = self.slots.len();
        if n <= self.cfg.run.metrics_sample_threshold {
            return None;
        }
        let size = self.cfg.run.metrics_sample_size.min(n);
        let stride = (n / size).max(1);
        let phase = self.rng_metrics.below(stride);
        Some((phase, stride))
    }

    pub(super) fn sample_cache_health(&mut self, now: SimTime) {
        let (phase, stride) = self.metrics_stride().unwrap_or((0, 1));
        let mut frac_sum = 0.0;
        let mut frac_n = 0usize;
        let mut live_sum = 0.0;
        let mut good_sum = 0.0;
        let mut stale_sum = 0.0;
        let mut entries_n = 0usize;
        let mut peers_n = 0usize;
        let n = self.slots.len();
        let mut i = phase;
        while i < n {
            let addr = self.slots[i];
            i += stride;
            let p = &self.peers[addr.index()];
            if !p.is_good() {
                continue;
            }
            peers_n += 1;
            let h = p.cache();
            let total = self.caches.len(h);
            let mut live = 0usize;
            let mut good_entries = 0usize;
            for e in self.caches.entries(h) {
                entries_n += 1;
                let t = &self.peers[e.addr().index()];
                if t.is_alive() {
                    live += 1;
                    if t.behavior() == Behavior::Good {
                        good_entries += 1;
                    }
                } else {
                    // Entry staleness = how long the cached information
                    // has been wrong: zero while the subject lives, the
                    // time since its death afterwards. This coherence lag
                    // is what push invalidations buy down — the quantity
                    // the maintenance experiment trades bandwidth against.
                    stale_sum += now.saturating_since(t.died_at()).as_secs();
                }
            }
            if total > 0 {
                frac_sum += live as f64 / total as f64;
                frac_n += 1;
            }
            live_sum += live as f64;
            good_sum += good_entries as f64;
        }
        // Per-peer means are unbiased under uniform slot sampling — no
        // rescaling needed, the denominators already count only visited
        // peers.
        if peers_n > 0 {
            let frac = if frac_n > 0 {
                frac_sum / frac_n as f64
            } else {
                0.0
            };
            let staleness = if entries_n > 0 {
                stale_sum / entries_n as f64
            } else {
                0.0
            };
            self.metrics.record_cache_health(
                frac,
                live_sum / peers_n as f64,
                good_sum / peers_n as f64,
                staleness,
            );
        }
    }

    pub(super) fn sample_connectivity(&mut self) {
        let n = self.slots.len();
        let plan = self.metrics_stride();
        let mut uf = UnionFind::new(n);
        let (phase, stride) = plan.unwrap_or((0, 1));
        let mut i = phase;
        while i < n {
            let slot = i;
            i += stride;
            let p = &self.peers[self.slots[slot].index()];
            if !p.is_alive() {
                continue;
            }
            for e in self.caches.entries(p.cache()) {
                // A live peer is by definition the current occupant of
                // its slot, so its SlotId is its dense index — no
                // addr→index map needed.
                let t = &self.peers[e.addr().index()];
                if t.is_alive() {
                    uf.union(slot, t.slot().index());
                }
            }
        }
        match plan {
            None => self.metrics.record_lcc(uf.largest_component()),
            Some((phase, stride)) => {
                // Only sampled slots contributed edges, so unsampled
                // slots are artificial singletons and the raw largest
                // component undercounts. Estimate instead: component
                // mass *restricted to sampled slots*, scaled to the
                // population. At stride 1 every slot is sampled and the
                // estimate collapses to the exhaustive value exactly.
                let mut mass = vec![0u32; n];
                let mut visited = 0usize;
                let mut largest = 0u32;
                let mut i = phase;
                while i < n {
                    let root = uf.find(i);
                    mass[root] += 1;
                    largest = largest.max(mass[root]);
                    visited += 1;
                    i += stride;
                }
                let scaled = f64::from(largest) * n as f64 / visited as f64;
                self.metrics.record_lcc(scaled.round() as usize);
            }
        }
    }
}
