//! Periodic measurement snapshots, driven by the kernel's sample tick
//! (see [`simkit::sim::KernelParams::with_sampling`]).

use super::*;

impl GuessSim {
    pub(super) fn sample_cache_health(&mut self) {
        let mut frac_sum = 0.0;
        let mut frac_n = 0usize;
        let mut live_sum = 0.0;
        let mut good_sum = 0.0;
        let mut peers_n = 0usize;
        for &addr in &self.slots {
            let p = &self.peers[addr.index()];
            if !p.is_good() {
                continue;
            }
            peers_n += 1;
            let total = p.link_cache().len();
            let mut live = 0usize;
            let mut good_entries = 0usize;
            for e in p.link_cache().iter() {
                let t = &self.peers[e.addr().index()];
                if t.is_alive() {
                    live += 1;
                    if t.behavior() == Behavior::Good {
                        good_entries += 1;
                    }
                }
            }
            if total > 0 {
                frac_sum += live as f64 / total as f64;
                frac_n += 1;
            }
            live_sum += live as f64;
            good_sum += good_entries as f64;
        }
        if peers_n > 0 {
            let frac = if frac_n > 0 {
                frac_sum / frac_n as f64
            } else {
                0.0
            };
            self.metrics.record_cache_health(
                frac,
                live_sum / peers_n as f64,
                good_sum / peers_n as f64,
            );
        }
    }

    pub(super) fn sample_connectivity(&mut self) {
        let n = self.slots.len();
        let mut uf = UnionFind::new(n);
        for (i, &addr) in self.slots.iter().enumerate() {
            let p = &self.peers[addr.index()];
            if !p.is_alive() {
                continue;
            }
            for e in p.link_cache().iter() {
                // A live peer is by definition the current occupant of
                // its slot, so its SlotId is its dense index — no
                // addr→index map needed.
                let t = &self.peers[e.addr().index()];
                if t.is_alive() {
                    uf.union(i, t.slot().index());
                }
            }
        }
        self.metrics.record_lcc(uf.largest_component());
    }
}
