//! Query execution: the iterative (or k-parallel) probe loop.
//!
//! Split out of the main engine module so the event handlers and the
//! probing algorithm can be read independently; this is still the same
//! `GuessSim` — a child module sees the engine's private state.

use super::*;

/// The accumulated state of one query's probe loop. The serial path
/// concludes it immediately; the lane runner ([`super::lanes`]) parks
/// it while cross-lane probes are in flight and concludes it when the
/// last remote pong lands, so every field is plain `Copy` data.
#[derive(Debug, Clone, Copy)]
pub(super) struct QueryExec {
    pub(super) qid: u64,
    /// What the query is looking for — the lane runner re-checks it
    /// against remote libraries.
    pub(super) target: QueryTarget,
    pub(super) selfish: bool,
    pub(super) desired: u32,
    pub(super) results: u32,
    pub(super) good: u32,
    pub(super) dead: u32,
    pub(super) refused: u32,
    /// Wall-clock rounds the local probe loop took.
    pub(super) rounds: f64,
}

impl GuessSim {
    /// Marks `addr` as considered by the query with dedup stamp `stamp`;
    /// returns true on the first visit. Addresses allocated mid-query
    /// (fabricated stubs) land beyond the vector and grow it.
    fn query_first_visit(&mut self, addr: PeerAddr, stamp: u64) -> bool {
        let i = addr.index();
        if i >= self.query_seen.len() {
            self.query_seen.resize(i + 1, 0);
        }
        if self.query_seen[i] == stamp {
            false
        } else {
            self.query_seen[i] = stamp;
            true
        }
    }

    /// Executes one query end-to-end: iterative (or k-parallel) probing of
    /// link-cache and query-cache candidates until `NumDesiredResults`
    /// results arrive or the candidate pool runs dry.
    pub(super) fn execute_query<T: TraceSink>(
        &mut self,
        prober: PeerAddr,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        let ex = self.execute_query_core(prober, now, ctx);
        let response = ex.rounds.ceil() * self.cfg.protocol.probe_interval.as_secs();
        let measured = ctx.after_warmup(now);
        self.conclude_query(&ex, now, response, measured, ctx);
    }

    /// The probe loop proper: runs the local candidate pool dry (or to
    /// satisfaction) and returns the accumulated counts *without*
    /// emitting the `QueryEnd` record or recording metrics — that is
    /// [`GuessSim::conclude_query`], deferred by the lane runner until
    /// cross-lane spill probes have answered.
    pub(super) fn execute_query_core<T: TraceSink>(
        &mut self,
        prober: PeerAddr,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) -> QueryExec {
        let qid = self.next_query;
        self.next_query += 1;
        if ctx.tracing() {
            ctx.emit(
                now,
                TraceRecord::QueryStart {
                    query: qid,
                    origin: prober.index() as u64,
                },
            );
        }
        let want = self.qmodel.sample_target(&mut self.rng_query);
        let desired = self.cfg.system.num_desired_results;
        let probe_gap = self.cfg.protocol.probe_interval;
        let distrust = self.cfg.protocol.distrust_pongs;

        // Selfish peers blast wide volleys regardless of the protocol's
        // configured walk width (§3.3); honest peers start at the
        // configured k and may widen it adaptively (§6.2 future work).
        let selfish = self.peers[prober.index()].is_selfish();
        let mut k = if selfish {
            self.cfg.system.selfish_parallelism
        } else {
            self.rt.parallel_probes
        };
        let mut resultless_streak = 0u32;

        // The probe pool: link-cache entries first, then everything the
        // query cache accumulates from pongs. The engine-owned stamp
        // vector enforces at-most-one probe per address per query
        // without a per-query set allocation.
        let stamp = qid + 1;
        let mut pool = ProbeQueue::new(self.cfg.protocol.query_probe);
        self.query_first_visit(prober, stamp);
        let mut seed_entries = std::mem::take(&mut self.entry_scratch);
        seed_entries.clear();
        let prober_cache = self.peers[prober.index()].cache();
        seed_entries.extend_from_slice(self.caches.entries(prober_cache));
        for &e in &seed_entries {
            if self.query_first_visit(e.addr(), stamp) {
                pool.push(e, &mut self.rng_policy);
            }
        }
        self.entry_scratch = seed_entries;

        let mut results = 0u32;
        let mut good = 0u32;
        let mut dead = 0u32;
        let mut refused = 0u32;
        // Wall-clock rounds elapsed: each probe occupies 1/k of a round.
        let mut rounds = 0.0f64;

        while results < desired {
            let Some(entry) = pool.pop() else {
                break;
            };
            let dst = entry.addr();
            // Serial probes go out one timeout apart; k-parallel walks
            // share each time slot.
            let t_probe = now + probe_gap * rounds;
            // Probe payments: a peer that cannot afford the probe must
            // stop searching until its allowance refills (§3.3).
            if self.cfg.protocol.probe_payments.is_some() {
                let broke = self.peers[prober.index()]
                    .account_mut()
                    .expect("accounts exist when payments are on")
                    .pay_probe(t_probe)
                    .is_err();
                if broke {
                    self.metrics.counters_mut().incr("probe_budget_exhausted");
                    break;
                }
            }
            rounds += 1.0 / k as f64;

            if !self.peers[dst.index()].is_alive() || !self.reachable(prober, dst) {
                dead += 1;
                if ctx.tracing() {
                    ctx.emit(
                        t_probe,
                        TraceRecord::Probe {
                            query: qid,
                            target: dst.index() as u64,
                            kind: ProbeKind::Query,
                            outcome: ProbeOutcome::Dead,
                        },
                    );
                }
                self.caches.remove(prober_cache, dst);
                if distrust {
                    self.note_dead_entry(prober, dst);
                }
                continue;
            }

            self.peers[dst.index()].note_probe_received();

            let dst_behavior = self.peers[dst.index()].behavior();
            if dst_behavior == Behavior::Good
                && self.peers[dst.index()].capacity_mut().admit(t_probe) == Admission::Refused
            {
                refused += 1;
                if ctx.tracing() {
                    ctx.emit(
                        t_probe,
                        TraceRecord::Probe {
                            query: qid,
                            target: dst.index() as u64,
                            kind: ProbeKind::Query,
                            outcome: ProbeOutcome::Refused,
                        },
                    );
                }
                if !self.cfg.protocol.do_backoff {
                    // A dropped probe times out; the prober assumes
                    // death and evicts — the inherent throttle.
                    self.caches.remove(prober_cache, dst);
                }
                continue;
            }

            good += 1;
            if ctx.tracing() {
                ctx.emit(
                    t_probe,
                    TraceRecord::Probe {
                        query: qid,
                        target: dst.index() as u64,
                        kind: ProbeKind::Query,
                        outcome: ProbeOutcome::Good,
                    },
                );
            }
            if distrust {
                self.peers[prober.index()].reputation_mut().note_alive(dst);
            }
            if self.cfg.protocol.probe_payments.is_some() {
                if let Some(acct) = self.peers[dst.index()].account_mut() {
                    acct.earn_answer(t_probe);
                }
            }
            let res = if dst_behavior == Behavior::Good
                && self
                    .libs
                    .contains(self.peers[dst.index()].library(), want.item)
            {
                1u32
            } else {
                0u32
            };
            results += res;

            // Adaptive walk widening: double k after a run of resultless
            // probes (only honest, non-selfish queriers bother).
            if let Some(ak) = self.cfg.protocol.adaptive_parallelism {
                if !selfish {
                    if res == 0 {
                        resultless_streak += 1;
                        if resultless_streak >= ak.escalate_after {
                            k = (k * 2).min(ak.max_k);
                            resultless_streak = 0;
                        }
                    } else {
                        resultless_streak = 0;
                    }
                }
            }

            // Both sides record the interaction (§2.1): the prober resets
            // NumRes for the target; the target refreshes TS for the
            // prober if cached, and may add the prober (introduction).
            if !self.caches.record_results(prober_cache, dst, now, res) {
                // Probed from the query cache: the entry is not in the
                // link cache; nothing to update.
            }
            let dst_cache = self.peers[dst.index()].cache();
            self.caches.touch(dst_cache, prober, now);
            self.apply_introduction(dst, prober, now, ctx);

            // The reply's pong feeds both the query cache (the probe pool)
            // and, subject to replacement policy, the link cache. Pongs
            // from blacklisted sources are dropped wholesale.
            if distrust && self.peers[prober.index()].reputation().is_blacklisted(dst) {
                self.metrics.counters_mut().incr("pongs_filtered");
                continue;
            }
            let pong = self.build_pong(dst, self.cfg.protocol.query_pong, now);
            for e in &pong.entries {
                if e.addr() == prober {
                    continue;
                }
                let mut entry = *e;
                if self.cfg.protocol.reset_num_results {
                    entry.reset_num_res();
                }
                if distrust {
                    if self.peers[prober.index()]
                        .reputation()
                        .is_blacklisted(entry.addr())
                    {
                        continue; // never re-admit a known liar
                    }
                    self.peers[prober.index()]
                        .reputation_mut()
                        .note_shared(dst, entry.addr());
                }
                if self.query_first_visit(entry.addr(), stamp) {
                    pool.push(entry, &mut self.rng_policy);
                }
                let policy = self.cfg.protocol.cache_replacement;
                let outcome = self
                    .caches
                    .offer(prober_cache, entry, policy, &mut self.rng_policy);
                self.trace_eviction(ctx, now, prober, outcome);
                if !matches!(outcome, InsertOutcome::Rejected) {
                    self.push_register(prober, entry.addr());
                }
            }
        }

        QueryExec {
            qid,
            target: want,
            selfish,
            desired,
            results,
            good,
            dead,
            refused,
            rounds,
        }
    }

    /// Concludes a query: emits the `QueryEnd` record at `now` and, when
    /// `measured` (the query *started* after warm-up), records the
    /// outcome. On the serial path this runs in the same event as the
    /// probe loop, byte-identical to the pre-split code; the lane
    /// runner calls it from the final remote-pong event instead.
    pub(super) fn conclude_query<T: TraceSink>(
        &mut self,
        ex: &QueryExec,
        now: SimTime,
        response_secs: f64,
        measured: bool,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if ctx.tracing() {
            ctx.emit(
                now,
                TraceRecord::QueryEnd {
                    query: ex.qid,
                    satisfied: ex.results >= ex.desired,
                    probes: ex.good + ex.dead + ex.refused,
                    results: ex.results,
                },
            );
        }
        if measured {
            self.metrics.record_query(QueryOutcome {
                good_probes: ex.good,
                dead_probes: ex.dead,
                refused_probes: ex.refused,
                satisfied: ex.results >= ex.desired,
                response_secs,
            });
            if ex.selfish {
                self.metrics.counters_mut().incr("selfish_queries");
            }
        }
    }
}
