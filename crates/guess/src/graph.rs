//! Connectivity of the "conceptual overlay".
//!
//! Link-cache pointers form a directed graph over peers (Figure 2 of the
//! paper). For the fragmentation experiments (§6.1, Figures 6–7) we
//! measure the size of the largest connected component of the *undirected*
//! view restricted to live peers, via a union-find.

/// Disjoint-set forest with union by size and path halving.
///
/// # Examples
///
/// ```
/// use guess::graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.largest_component(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns true if the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merges the sets containing `a` and `b`; returns true if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Returns true if `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the largest set; zero when empty.
    #[must_use]
    pub fn largest_component(&self) -> usize {
        // `size` is only authoritative at roots, but root sizes dominate
        // their children's stale values, so the max is correct.
        self.size.iter().copied().max().unwrap_or(0) as usize
    }
}

/// Computes the largest connected component of an undirected graph given
/// as `n` nodes and an edge iterator. Edges touching out-of-range nodes
/// are ignored.
pub fn largest_component<I>(n: usize, edges: I) -> usize
where
    I: IntoIterator<Item = (usize, usize)>,
{
    if n == 0 {
        return 0;
    }
    let mut uf = UnionFind::new(n);
    for (a, b) in edges {
        if a < n && b < n {
            uf.union(a, b);
        }
    }
    uf.largest_component()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_have_unit_components() {
        let uf = UnionFind::new(5);
        assert_eq!(uf.largest_component(), 1);
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.largest_component(), 0);
    }

    #[test]
    fn union_merges_and_reports() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.largest_component(), 3);
    }

    #[test]
    fn chain_connects_everything() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.largest_component(), n);
        assert!(uf.connected(0, n - 1));
    }

    #[test]
    fn largest_component_function_matches_manual() {
        let edges = vec![(0, 1), (1, 2), (4, 5)];
        assert_eq!(largest_component(6, edges), 3);
    }

    #[test]
    fn out_of_range_edges_ignored() {
        assert_eq!(largest_component(3, vec![(0, 1), (2, 99)]), 2);
        assert_eq!(largest_component(0, vec![(0, 1)]), 0);
    }

    #[test]
    fn union_find_agrees_with_bfs() {
        // Random graph; compare component sizes against a BFS computation.
        use simkit::rng::RngStream;
        let mut rng = RngStream::from_seed(11, "graph");
        let n = 200;
        let edges: Vec<(usize, usize)> = (0..150).map(|_| (rng.below(n), rng.below(n))).collect();

        let uf_answer = largest_component(n, edges.iter().copied());

        // BFS ground truth.
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut best = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            seen[start] = true;
            let mut size = 0;
            while let Some(v) = stack.pop() {
                size += 1;
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            best = best.max(size);
        }
        assert_eq!(uf_answer, best);
    }
}
