//! Policies — the paper's central subject.
//!
//! GUESS performance hinges on five policy points (§4): the order query
//! probes go out (`QueryProbe`), which entries go into a pong answering a
//! query (`QueryPong`), the order maintenance pings go out (`PingProbe`),
//! which entries go into a pong answering a ping (`PingPong`), and which
//! entry is evicted when the link cache is full (`CacheReplacement`).
//!
//! The first four are *selection* policies: they prefer some entries over
//! others. Replacement policies are named for **what gets evicted**, so the
//! mirror of a Most-Files-Shared selection goal is a Least-Files-Shared
//! eviction ([`ReplacementPolicy::Lfs`]).
//!
//! MR\* is not a separate ordering: it is [`SelectionPolicy::Mr`] combined
//! with the `ResetNumResults` protocol flag, which zeroes third-party
//! `NumRes` claims at insertion time.

use simkit::rng::RngStream;
use simkit::time::SimTime;

use crate::entry::CacheEntry;

/// Preference order for probes and pong construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionPolicy {
    /// Uniformly random order — the paper's baseline, and the fairest.
    #[default]
    Random,
    /// Most Recently Used: freshest `TS` first (fewest wasted probes).
    Mru,
    /// Least Recently Used: stalest `TS` first (spreads load; risks dead
    /// probes).
    Lru,
    /// Most Files Shared: highest advertised `NumFiles` first.
    Mfs,
    /// Most Results: highest recorded `NumRes` first.
    Mr,
}

/// Eviction order for the link cache, named for what gets **evicted**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict a uniformly random entry.
    #[default]
    Random,
    /// Evict the least-recently-used entry (keeps fresh entries — the
    /// MRU-goal mirror).
    Lru,
    /// Evict the most-recently-used entry (the fairness mirror; the paper
    /// shows it is pathological).
    Mru,
    /// Evict the entry advertising the fewest files (keeps big sharers —
    /// the MFS-goal mirror).
    Lfs,
    /// Evict the entry with the fewest recorded results (the MR-goal
    /// mirror).
    Lr,
}

impl std::fmt::Display for SelectionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SelectionPolicy::Random => "Ran",
            SelectionPolicy::Mru => "MRU",
            SelectionPolicy::Lru => "LRU",
            SelectionPolicy::Mfs => "MFS",
            SelectionPolicy::Mr => "MR",
        };
        f.write_str(s)
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReplacementPolicy::Random => "Ran",
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Mru => "MRU",
            ReplacementPolicy::Lfs => "LFS",
            ReplacementPolicy::Lr => "LR",
        };
        f.write_str(s)
    }
}

impl SelectionPolicy {
    /// The replacement policy that pursues the same goal as this selection
    /// policy (§4: "Most Files Shared becomes Least Files Shared", …).
    #[must_use]
    pub fn mirror_replacement(self) -> ReplacementPolicy {
        match self {
            SelectionPolicy::Random => ReplacementPolicy::Random,
            SelectionPolicy::Mru => ReplacementPolicy::Lru,
            SelectionPolicy::Lru => ReplacementPolicy::Mru,
            SelectionPolicy::Mfs => ReplacementPolicy::Lfs,
            SelectionPolicy::Mr => ReplacementPolicy::Lr,
        }
    }
}

/// Scales a timestamp to an orderable integer (microsecond resolution).
fn ts_key(ts: SimTime) -> u64 {
    (ts.as_secs() * 1e6) as u64
}

/// Preference key for `entry` under `policy`: **larger keys are preferred**
/// (probed/pong'd first, evicted last). Ties are broken by a random draw so
/// equal-key entries are treated symmetrically.
#[must_use]
pub fn selection_key(
    policy: SelectionPolicy,
    entry: &CacheEntry,
    rng: &mut RngStream,
) -> (u64, u64) {
    let tie = rng.next_u64();
    let primary = match policy {
        SelectionPolicy::Random => 0,
        SelectionPolicy::Mru => ts_key(entry.ts()),
        SelectionPolicy::Lru => u64::MAX - ts_key(entry.ts()),
        SelectionPolicy::Mfs => u64::from(entry.num_files()),
        SelectionPolicy::Mr => u64::from(entry.num_res()),
    };
    (primary, tie)
}

/// Retention key for `entry` under an eviction policy: the entry with the
/// **smallest** key is the eviction victim.
#[must_use]
pub fn retention_key(
    policy: ReplacementPolicy,
    entry: &CacheEntry,
    rng: &mut RngStream,
) -> (u64, u64) {
    let tie = rng.next_u64();
    let primary = match policy {
        ReplacementPolicy::Random => 0,
        // Evicting the LRU entry means retaining by freshness.
        ReplacementPolicy::Lru => ts_key(entry.ts()),
        // Evicting the MRU entry means retaining by staleness.
        ReplacementPolicy::Mru => u64::MAX - ts_key(entry.ts()),
        ReplacementPolicy::Lfs => u64::from(entry.num_files()),
        ReplacementPolicy::Lr => u64::from(entry.num_res()),
    };
    (primary, tie)
}

/// Selects up to `k` entries from `entries` in preference order under
/// `policy` — this is how pongs are built.
///
/// Runs in O(n) for `Random` and O(n log k) otherwise.
#[must_use]
pub fn select_top_k(
    policy: SelectionPolicy,
    entries: &[CacheEntry],
    k: usize,
    rng: &mut RngStream,
) -> Vec<CacheEntry> {
    if k == 0 || entries.is_empty() {
        return Vec::new();
    }
    if policy == SelectionPolicy::Random {
        return rng
            .sample_indices(entries.len(), k)
            .into_iter()
            .map(|i| entries[i])
            .collect();
    }
    // Keep the k best seen so far in a small min-heap (by key).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<((u64, u64), usize)>> = BinaryHeap::with_capacity(k + 1);
    for (i, e) in entries.iter().enumerate() {
        let key = selection_key(policy, e, rng);
        heap.push(Reverse((key, i)));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut picked: Vec<((u64, u64), usize)> = heap.into_iter().map(|Reverse(x)| x).collect();
    // Preference order: highest key first.
    picked.sort_by_key(|&(key, _)| Reverse(key));
    picked.into_iter().map(|(_, i)| entries[i]).collect()
}

/// Picks the index of the eviction victim under `policy` from a non-empty
/// slice, i.e. the entry with the smallest retention key.
///
/// Returns `None` on an empty slice.
#[must_use]
pub fn eviction_victim(
    policy: ReplacementPolicy,
    entries: &[CacheEntry],
    rng: &mut RngStream,
) -> Option<usize> {
    if entries.is_empty() {
        return None;
    }
    if policy == ReplacementPolicy::Random {
        return Some(rng.below(entries.len()));
    }
    entries
        .iter()
        .enumerate()
        .map(|(i, e)| (retention_key(policy, e, rng), i))
        .min()
        .map(|(_, i)| i)
}

/// A probe-ordering queue: candidates are pushed as they are discovered
/// (link cache first, then pong entries) and popped in preference order
/// under the `QueryProbe`/`PingProbe` policy.
///
/// Keys are fixed at push time; the paper's policies rank on the metadata
/// carried by the entry, which does not change while the entry waits in the
/// queue.
///
/// # Examples
///
/// ```
/// use guess::addr::AddrAllocator;
/// use guess::entry::CacheEntry;
/// use guess::policy::{ProbeQueue, SelectionPolicy};
/// use simkit::rng::RngStream;
/// use simkit::time::SimTime;
///
/// let mut alloc = AddrAllocator::new();
/// let mut rng = RngStream::from_seed(1, "doc");
/// let mut q = ProbeQueue::new(SelectionPolicy::Mfs);
/// q.push(CacheEntry::new(alloc.allocate(), SimTime::ZERO, 10), &mut rng);
/// q.push(CacheEntry::new(alloc.allocate(), SimTime::ZERO, 999), &mut rng);
/// assert_eq!(q.pop().unwrap().num_files(), 999);
/// ```
#[derive(Debug)]
pub struct ProbeQueue {
    policy: SelectionPolicy,
    heap: std::collections::BinaryHeap<Ranked>,
}

#[derive(Debug, PartialEq, Eq)]
struct Ranked {
    key: (u64, u64),
    entry_addr_order: u64,
    entry: RankedEntry,
}

// CacheEntry is PartialEq but not Eq/Ord (contains SimTime floats); wrap the
// fields we need for heap storage.
#[derive(Debug, PartialEq, Eq)]
struct RankedEntry {
    addr: crate::addr::PeerAddr,
    ts_micros: u64,
    num_files: u32,
    num_res: u32,
}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl ProbeQueue {
    /// Creates an empty queue ordering by `policy`.
    #[must_use]
    pub fn new(policy: SelectionPolicy) -> Self {
        ProbeQueue {
            policy,
            heap: std::collections::BinaryHeap::new(),
        }
    }

    /// The queue's ordering policy.
    #[must_use]
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// Adds a candidate. The caller is responsible for deduplication.
    pub fn push(&mut self, entry: CacheEntry, rng: &mut RngStream) {
        let key = selection_key(self.policy, &entry, rng);
        self.heap.push(Ranked {
            key,
            entry_addr_order: entry.addr().index() as u64,
            entry: RankedEntry {
                addr: entry.addr(),
                ts_micros: (entry.ts().as_secs() * 1e6) as u64,
                num_files: entry.num_files(),
                num_res: entry.num_res(),
            },
        });
    }

    /// Pops the most-preferred candidate.
    pub fn pop(&mut self) -> Option<CacheEntry> {
        self.heap.pop().map(|r| {
            CacheEntry::from_pong(
                r.entry.addr,
                SimTime::from_secs(r.entry.ts_micros as f64 / 1e6),
                r.entry.num_files,
                r.entry.num_res,
            )
        })
    }

    /// Number of waiting candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no candidates wait.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrAllocator;

    fn entries(n: usize) -> (Vec<CacheEntry>, AddrAllocator) {
        let mut alloc = AddrAllocator::new();
        let v = (0..n)
            .map(|i| {
                let mut e = CacheEntry::new(
                    alloc.allocate(),
                    SimTime::from_secs(i as f64),
                    (i * 10) as u32,
                );
                e.record_results(SimTime::from_secs(i as f64), (i % 4) as u32);
                e
            })
            .collect();
        (v, alloc)
    }

    fn rng() -> RngStream {
        RngStream::from_seed(99, "policy-test")
    }

    #[test]
    fn mfs_prefers_big_sharers() {
        let (es, _) = entries(10);
        let mut r = rng();
        let top = select_top_k(SelectionPolicy::Mfs, &es, 3, &mut r);
        let files: Vec<u32> = top.iter().map(CacheEntry::num_files).collect();
        assert_eq!(files, vec![90, 80, 70]);
    }

    #[test]
    fn mru_prefers_fresh_lru_prefers_stale() {
        let (es, _) = entries(5);
        let mut r = rng();
        let mru = select_top_k(SelectionPolicy::Mru, &es, 1, &mut r)[0];
        let lru = select_top_k(SelectionPolicy::Lru, &es, 1, &mut r)[0];
        assert_eq!(mru.ts(), SimTime::from_secs(4.0));
        assert_eq!(lru.ts(), SimTime::ZERO);
    }

    #[test]
    fn mr_prefers_producers() {
        let (es, _) = entries(8);
        let mut r = rng();
        let top = select_top_k(SelectionPolicy::Mr, &es, 2, &mut r);
        assert!(top.iter().all(|e| e.num_res() == 3));
    }

    #[test]
    fn random_selection_is_distinct_subset() {
        let (es, _) = entries(20);
        let mut r = rng();
        let sel = select_top_k(SelectionPolicy::Random, &es, 5, &mut r);
        assert_eq!(sel.len(), 5);
        let mut addrs: Vec<_> = sel.iter().map(|e| e.addr()).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 5);
    }

    #[test]
    fn top_k_clamps_to_len() {
        let (es, _) = entries(3);
        let mut r = rng();
        assert_eq!(select_top_k(SelectionPolicy::Mfs, &es, 10, &mut r).len(), 3);
        assert!(select_top_k(SelectionPolicy::Mfs, &es, 0, &mut r).is_empty());
        assert!(select_top_k(SelectionPolicy::Mfs, &[], 3, &mut r).is_empty());
    }

    #[test]
    fn lfs_evicts_smallest_sharer() {
        let (es, _) = entries(10);
        let mut r = rng();
        let victim = eviction_victim(ReplacementPolicy::Lfs, &es, &mut r).unwrap();
        assert_eq!(es[victim].num_files(), 0);
    }

    #[test]
    fn lru_eviction_removes_stalest_mru_removes_freshest() {
        let (es, _) = entries(6);
        let mut r = rng();
        let lru = eviction_victim(ReplacementPolicy::Lru, &es, &mut r).unwrap();
        assert_eq!(es[lru].ts(), SimTime::ZERO);
        let mru = eviction_victim(ReplacementPolicy::Mru, &es, &mut r).unwrap();
        assert_eq!(es[mru].ts(), SimTime::from_secs(5.0));
    }

    #[test]
    fn eviction_on_empty_is_none() {
        let mut r = rng();
        assert!(eviction_victim(ReplacementPolicy::Random, &[], &mut r).is_none());
    }

    #[test]
    fn random_eviction_is_in_bounds() {
        let (es, _) = entries(7);
        let mut r = rng();
        for _ in 0..100 {
            let v = eviction_victim(ReplacementPolicy::Random, &es, &mut r).unwrap();
            assert!(v < 7);
        }
    }

    #[test]
    fn probe_queue_orders_by_policy() {
        let (es, _) = entries(10);
        let mut r = rng();
        let mut q = ProbeQueue::new(SelectionPolicy::Mfs);
        for e in &es {
            q.push(*e, &mut r);
        }
        let mut last = u32::MAX;
        while let Some(e) = q.pop() {
            assert!(
                e.num_files() <= last,
                "queue must pop in descending NumFiles"
            );
            last = e.num_files();
        }
    }

    #[test]
    fn probe_queue_random_pops_everything() {
        let (es, _) = entries(50);
        let mut r = rng();
        let mut q = ProbeQueue::new(SelectionPolicy::Random);
        for e in &es {
            q.push(*e, &mut r);
        }
        assert_eq!(q.len(), 50);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 50);
        assert!(q.is_empty());
    }

    #[test]
    fn probe_queue_round_trips_entry_fields() {
        let mut r = rng();
        let mut alloc = AddrAllocator::new();
        let e = CacheEntry::from_pong(alloc.allocate(), SimTime::from_secs(12.5), 77, 3);
        let mut q = ProbeQueue::new(SelectionPolicy::Mr);
        q.push(e, &mut r);
        let back = q.pop().unwrap();
        assert_eq!(back.addr(), e.addr());
        assert_eq!(back.num_files(), 77);
        assert_eq!(back.num_res(), 3);
        assert!((back.ts().as_secs() - 12.5).abs() < 1e-5);
    }

    #[test]
    fn mirror_replacement_matches_paper_table() {
        assert_eq!(
            SelectionPolicy::Mfs.mirror_replacement(),
            ReplacementPolicy::Lfs
        );
        assert_eq!(
            SelectionPolicy::Mr.mirror_replacement(),
            ReplacementPolicy::Lr
        );
        assert_eq!(
            SelectionPolicy::Mru.mirror_replacement(),
            ReplacementPolicy::Lru
        );
        assert_eq!(
            SelectionPolicy::Lru.mirror_replacement(),
            ReplacementPolicy::Mru
        );
        assert_eq!(
            SelectionPolicy::Random.mirror_replacement(),
            ReplacementPolicy::Random
        );
    }

    #[test]
    fn display_names_match_figures() {
        assert_eq!(SelectionPolicy::Mfs.to_string(), "MFS");
        assert_eq!(ReplacementPolicy::Lfs.to_string(), "LFS");
        assert_eq!(SelectionPolicy::Random.to_string(), "Ran");
    }
}
