//! Per-peer simulation state.
//!
//! Bulk storage — the library item ids and the link-cache entries — does
//! not live here: `PeerState` holds arena *handles*
//! ([`workload::content::LibraryHandle`], [`crate::link_cache::CacheHandle`])
//! into engine-owned arenas. A dead peer's record stays in the peer table
//! forever (so stale cache entries still resolve), but its arena blocks
//! are released at death and recycled by the replacement peer, which is
//! what keeps long churny runs at a flat bytes-per-peer cost.

use simkit::time::{SimDuration, SimTime};
use workload::content::LibraryHandle;

use crate::addr::{PeerAddr, SlotId};
use crate::capacity::CapacityMeter;
use crate::link_cache::CacheHandle;
use crate::payments::ProbeAccount;
use crate::reputation::{ReputationParams, ReputationTracker};

/// Whether a peer follows the protocol or attacks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Behavior {
    /// An honest peer: answers queries from its library, shares real cache
    /// entries in pongs.
    Good,
    /// A malicious peer (§6.4): returns no results and poisons pongs with
    /// dead or colluding addresses, advertising inflated metadata.
    Malicious,
}

/// The complete state of one peer instance.
///
/// A `PeerState` is created at birth and never removed: after death it
/// remains in the peer table (flagged dead) so stale cache entries held by
/// others still resolve to *something* — namely, a peer that will never
/// answer a probe.
#[derive(Debug, Clone)]
pub struct PeerState {
    addr: PeerAddr,
    slot: SlotId,
    behavior: Behavior,
    alive: bool,
    born: SimTime,
    died: SimTime,
    /// Advertised shared-file count. Honest peers advertise the truth;
    /// malicious peers inflate it to game metadata-trusting policies.
    advertised_files: u32,
    library: LibraryHandle,
    cache: CacheHandle,
    capacity: CapacityMeter,
    probes_received: u64,
    selfish: bool,
    ping_interval: SimDuration,
    reputation: ReputationTracker,
    account: Option<ProbeAccount>,
}

impl PeerState {
    /// Creates a live peer owning the given arena blocks.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        addr: PeerAddr,
        slot: SlotId,
        behavior: Behavior,
        born: SimTime,
        advertised_files: u32,
        library: LibraryHandle,
        cache: CacheHandle,
        probe_limit: Option<u32>,
    ) -> Self {
        PeerState {
            addr,
            slot,
            behavior,
            alive: true,
            born,
            died: born,
            advertised_files,
            library,
            cache,
            capacity: CapacityMeter::with_limit(probe_limit),
            probes_received: 0,
            selfish: false,
            ping_interval: SimDuration::from_secs(30.0),
            reputation: ReputationTracker::new(ReputationParams::default()),
            account: None,
        }
    }

    /// Creates a dead placeholder for a fabricated address (the dead IPs
    /// malicious peers hand out in poisoned pongs). Stubs own no arena
    /// blocks: the library handle is empty and the cache handle is null —
    /// nothing ever probes *through* a stub.
    #[must_use]
    pub fn dead_stub(addr: PeerAddr, born: SimTime) -> Self {
        PeerState {
            addr,
            slot: SlotId(u32::MAX),
            behavior: Behavior::Malicious,
            alive: false,
            born,
            // A fabricated address was never live: its pointers are stale
            // information from the moment they first circulate.
            died: born,
            advertised_files: 0,
            library: LibraryHandle::EMPTY,
            cache: CacheHandle::NULL,
            capacity: CapacityMeter::with_limit(None),
            probes_received: 0,
            selfish: false,
            ping_interval: SimDuration::from_secs(30.0),
            reputation: ReputationTracker::new(ReputationParams::default()),
            account: None,
        }
    }

    /// This peer's address.
    #[must_use]
    pub fn addr(&self) -> PeerAddr {
        self.addr
    }

    /// The network slot this peer occupies (or occupied).
    #[must_use]
    pub fn slot(&self) -> SlotId {
        self.slot
    }

    /// Honest or malicious.
    #[must_use]
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// True until the peer leaves the network.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// True for live peers that follow the protocol.
    #[must_use]
    pub fn is_good(&self) -> bool {
        self.alive && self.behavior == Behavior::Good
    }

    /// Birth instant.
    #[must_use]
    pub fn born(&self) -> SimTime {
        self.born
    }

    /// The file count this peer advertises in introductions and pongs.
    #[must_use]
    pub fn advertised_files(&self) -> u32 {
        self.advertised_files
    }

    /// Handle to the peer's content library in the engine's library arena.
    #[must_use]
    pub fn library(&self) -> LibraryHandle {
        self.library
    }

    /// Handle to the peer's link cache in the engine's cache arena.
    #[must_use]
    pub fn cache(&self) -> CacheHandle {
        self.cache
    }

    /// Mutable access to the capacity meter.
    pub fn capacity_mut(&mut self) -> &mut CapacityMeter {
        &mut self.capacity
    }

    /// Total probes that have arrived at this peer while alive (including
    /// refused ones — a refusal still costs the receiver work).
    #[must_use]
    pub fn probes_received(&self) -> u64 {
        self.probes_received
    }

    /// Records an arriving probe for load accounting.
    pub fn note_probe_received(&mut self) {
        self.probes_received += 1;
    }

    /// Marks the peer as departed at `now`. GUESS peers leave silently
    /// (§3.2): no notification is sent; others discover the death via
    /// failed probes. The instant is kept so the staleness sweep can
    /// measure how long cache entries keep pointing at the corpse.
    pub fn kill(&mut self, now: SimTime) {
        self.alive = false;
        self.died = now;
    }

    /// When the peer left the network. Meaningful only once
    /// [`is_alive`](Self::is_alive) is false; dead stubs report their
    /// creation instant.
    #[must_use]
    pub fn died_at(&self) -> SimTime {
        self.died
    }

    /// Surrenders the peer's arena blocks at death: returns the handles
    /// (for the engine to free) and leaves the record holding inert
    /// null/empty handles so any later read sees an empty cache/library.
    pub fn release_storage(&mut self) -> (CacheHandle, LibraryHandle) {
        let released = (self.cache, self.library);
        self.cache = CacheHandle::NULL;
        self.library = LibraryHandle::EMPTY;
        released
    }

    /// Whether this (honest) peer games the system with huge probe
    /// volleys (§3.3).
    #[must_use]
    pub fn is_selfish(&self) -> bool {
        self.selfish
    }

    /// Flags the peer as selfish.
    pub fn set_selfish(&mut self, selfish: bool) {
        self.selfish = selfish;
    }

    /// The peer's current maintenance ping interval (adaptive pinging
    /// adjusts it at runtime).
    #[must_use]
    pub fn ping_interval(&self) -> SimDuration {
        self.ping_interval
    }

    /// Sets the maintenance ping interval.
    pub fn set_ping_interval(&mut self, interval: SimDuration) {
        self.ping_interval = interval;
    }

    /// The peer's pong-source reputation memory.
    #[must_use]
    pub fn reputation(&self) -> &ReputationTracker {
        &self.reputation
    }

    /// Mutable access to the reputation memory.
    pub fn reputation_mut(&mut self) -> &mut ReputationTracker {
        &mut self.reputation
    }

    /// Opens (or replaces) the peer's probe-credit account.
    pub fn open_account(&mut self, account: ProbeAccount) {
        self.account = Some(account);
    }

    /// Mutable access to the probe-credit account, if the payment economy
    /// is enabled.
    pub fn account_mut(&mut self) -> Option<&mut ProbeAccount> {
        self.account.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrAllocator;
    use crate::link_cache::CacheArena;

    fn peer_in(arena: &mut CacheArena) -> PeerState {
        let mut alloc = AddrAllocator::new();
        PeerState::new(
            alloc.allocate(),
            SlotId(0),
            Behavior::Good,
            SimTime::ZERO,
            42,
            LibraryHandle::EMPTY,
            arena.alloc(),
            Some(100),
        )
    }

    fn peer() -> PeerState {
        peer_in(&mut CacheArena::new(10))
    }

    #[test]
    fn newborn_is_alive_and_good() {
        let mut arena = CacheArena::new(10);
        let p = peer_in(&mut arena);
        assert!(p.is_alive());
        assert!(p.is_good());
        assert_eq!(p.advertised_files(), 42);
        assert_eq!(p.probes_received(), 0);
        assert!(!p.cache().is_null());
        assert_eq!(arena.len(p.cache()), 0);
    }

    #[test]
    fn kill_marks_dead_and_records_the_instant() {
        let mut p = peer();
        p.kill(SimTime::from_secs(12.5));
        assert!(!p.is_alive());
        assert!(!p.is_good());
        assert_eq!(p.died_at(), SimTime::from_secs(12.5));
    }

    #[test]
    fn release_storage_leaves_inert_handles() {
        let mut arena = CacheArena::new(10);
        let mut p = peer_in(&mut arena);
        let original = p.cache();
        p.kill(SimTime::ZERO);
        let (cache, library) = p.release_storage();
        assert_eq!(cache, original);
        assert!(library.is_empty());
        arena.free(cache);
        assert!(p.cache().is_null(), "record keeps only the null handle");
        assert!(p.library().is_empty());
        assert_eq!(arena.alloc(), original, "block is recycled");
    }

    #[test]
    fn dead_stub_is_dead_from_birth() {
        let mut alloc = AddrAllocator::new();
        let s = PeerState::dead_stub(alloc.allocate(), SimTime::from_secs(5.0));
        assert!(!s.is_alive());
        assert!(!s.is_good());
        assert_eq!(s.born(), SimTime::from_secs(5.0));
        assert_eq!(s.died_at(), SimTime::from_secs(5.0));
        assert!(s.library().is_empty());
        assert!(s.cache().is_null());
    }

    #[test]
    fn probe_load_accumulates() {
        let mut p = peer();
        p.note_probe_received();
        p.note_probe_received();
        assert_eq!(p.probes_received(), 2);
    }

    #[test]
    fn selfish_flag_and_ping_interval_round_trip() {
        let mut p = peer();
        assert!(!p.is_selfish());
        p.set_selfish(true);
        assert!(p.is_selfish());
        p.set_ping_interval(SimDuration::from_secs(12.0));
        assert_eq!(p.ping_interval(), SimDuration::from_secs(12.0));
    }

    #[test]
    fn reputation_is_per_peer() {
        let mut p = peer();
        let mut alloc = AddrAllocator::new();
        let src = alloc.allocate();
        let subj = alloc.allocate();
        p.reputation_mut().note_shared(src, subj);
        p.reputation_mut().note_dead(subj);
        assert_eq!(
            p.reputation().blacklisted_count(),
            0,
            "one strike is not enough"
        );
    }

    #[test]
    fn malicious_live_peer_is_not_good() {
        let mut alloc = AddrAllocator::new();
        let p = PeerState::new(
            alloc.allocate(),
            SlotId(1),
            Behavior::Malicious,
            SimTime::ZERO,
            5000,
            LibraryHandle::EMPTY,
            CacheHandle::NULL,
            None,
        );
        assert!(p.is_alive());
        assert!(!p.is_good());
        assert_eq!(p.behavior(), Behavior::Malicious);
    }
}
