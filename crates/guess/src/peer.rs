//! Per-peer simulation state.

use simkit::time::{SimDuration, SimTime};
use workload::content::PeerLibrary;

use crate::addr::{PeerAddr, SlotId};
use crate::capacity::CapacityMeter;
use crate::link_cache::LinkCache;
use crate::payments::ProbeAccount;
use crate::reputation::{ReputationParams, ReputationTracker};

/// Whether a peer follows the protocol or attacks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Behavior {
    /// An honest peer: answers queries from its library, shares real cache
    /// entries in pongs.
    Good,
    /// A malicious peer (§6.4): returns no results and poisons pongs with
    /// dead or colluding addresses, advertising inflated metadata.
    Malicious,
}

/// The complete state of one peer instance.
///
/// A `PeerState` is created at birth and never removed: after death it
/// remains in the peer table (flagged dead) so stale cache entries held by
/// others still resolve to *something* — namely, a peer that will never
/// answer a probe.
#[derive(Debug, Clone)]
pub struct PeerState {
    addr: PeerAddr,
    slot: SlotId,
    behavior: Behavior,
    alive: bool,
    born: SimTime,
    /// Advertised shared-file count. Honest peers advertise the truth;
    /// malicious peers inflate it to game metadata-trusting policies.
    advertised_files: u32,
    library: PeerLibrary,
    link_cache: LinkCache,
    capacity: CapacityMeter,
    probes_received: u64,
    selfish: bool,
    ping_interval: SimDuration,
    reputation: ReputationTracker,
    account: Option<ProbeAccount>,
}

impl PeerState {
    /// Creates a live peer.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        addr: PeerAddr,
        slot: SlotId,
        behavior: Behavior,
        born: SimTime,
        advertised_files: u32,
        library: PeerLibrary,
        cache_capacity: usize,
        probe_limit: Option<u32>,
    ) -> Self {
        PeerState {
            addr,
            slot,
            behavior,
            alive: true,
            born,
            advertised_files,
            library,
            link_cache: LinkCache::new(cache_capacity),
            capacity: CapacityMeter::with_limit(probe_limit),
            probes_received: 0,
            selfish: false,
            ping_interval: SimDuration::from_secs(30.0),
            reputation: ReputationTracker::new(ReputationParams::default()),
            account: None,
        }
    }

    /// Creates a dead placeholder for a fabricated address (the dead IPs
    /// malicious peers hand out in poisoned pongs).
    #[must_use]
    pub fn dead_stub(addr: PeerAddr, born: SimTime) -> Self {
        PeerState {
            addr,
            slot: SlotId(u32::MAX),
            behavior: Behavior::Malicious,
            alive: false,
            born,
            advertised_files: 0,
            library: PeerLibrary::empty(),
            link_cache: LinkCache::new(1),
            capacity: CapacityMeter::with_limit(None),
            probes_received: 0,
            selfish: false,
            ping_interval: SimDuration::from_secs(30.0),
            reputation: ReputationTracker::new(ReputationParams::default()),
            account: None,
        }
    }

    /// This peer's address.
    #[must_use]
    pub fn addr(&self) -> PeerAddr {
        self.addr
    }

    /// The network slot this peer occupies (or occupied).
    #[must_use]
    pub fn slot(&self) -> SlotId {
        self.slot
    }

    /// Honest or malicious.
    #[must_use]
    pub fn behavior(&self) -> Behavior {
        self.behavior
    }

    /// True until the peer leaves the network.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// True for live peers that follow the protocol.
    #[must_use]
    pub fn is_good(&self) -> bool {
        self.alive && self.behavior == Behavior::Good
    }

    /// Birth instant.
    #[must_use]
    pub fn born(&self) -> SimTime {
        self.born
    }

    /// The file count this peer advertises in introductions and pongs.
    #[must_use]
    pub fn advertised_files(&self) -> u32 {
        self.advertised_files
    }

    /// The peer's actual content library.
    #[must_use]
    pub fn library(&self) -> &PeerLibrary {
        &self.library
    }

    /// The peer's link cache.
    #[must_use]
    pub fn link_cache(&self) -> &LinkCache {
        &self.link_cache
    }

    /// Mutable access to the link cache.
    pub fn link_cache_mut(&mut self) -> &mut LinkCache {
        &mut self.link_cache
    }

    /// Mutable access to the capacity meter.
    pub fn capacity_mut(&mut self) -> &mut CapacityMeter {
        &mut self.capacity
    }

    /// Total probes that have arrived at this peer while alive (including
    /// refused ones — a refusal still costs the receiver work).
    #[must_use]
    pub fn probes_received(&self) -> u64 {
        self.probes_received
    }

    /// Records an arriving probe for load accounting.
    pub fn note_probe_received(&mut self) {
        self.probes_received += 1;
    }

    /// Marks the peer as departed. GUESS peers leave silently (§3.2): no
    /// notification is sent; others discover the death via failed probes.
    pub fn kill(&mut self) {
        self.alive = false;
    }

    /// Whether this (honest) peer games the system with huge probe
    /// volleys (§3.3).
    #[must_use]
    pub fn is_selfish(&self) -> bool {
        self.selfish
    }

    /// Flags the peer as selfish.
    pub fn set_selfish(&mut self, selfish: bool) {
        self.selfish = selfish;
    }

    /// The peer's current maintenance ping interval (adaptive pinging
    /// adjusts it at runtime).
    #[must_use]
    pub fn ping_interval(&self) -> SimDuration {
        self.ping_interval
    }

    /// Sets the maintenance ping interval.
    pub fn set_ping_interval(&mut self, interval: SimDuration) {
        self.ping_interval = interval;
    }

    /// The peer's pong-source reputation memory.
    #[must_use]
    pub fn reputation(&self) -> &ReputationTracker {
        &self.reputation
    }

    /// Mutable access to the reputation memory.
    pub fn reputation_mut(&mut self) -> &mut ReputationTracker {
        &mut self.reputation
    }

    /// Opens (or replaces) the peer's probe-credit account.
    pub fn open_account(&mut self, account: ProbeAccount) {
        self.account = Some(account);
    }

    /// Mutable access to the probe-credit account, if the payment economy
    /// is enabled.
    pub fn account_mut(&mut self) -> Option<&mut ProbeAccount> {
        self.account.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrAllocator;

    fn peer() -> PeerState {
        let mut alloc = AddrAllocator::new();
        PeerState::new(
            alloc.allocate(),
            SlotId(0),
            Behavior::Good,
            SimTime::ZERO,
            42,
            PeerLibrary::empty(),
            10,
            Some(100),
        )
    }

    #[test]
    fn newborn_is_alive_and_good() {
        let p = peer();
        assert!(p.is_alive());
        assert!(p.is_good());
        assert_eq!(p.advertised_files(), 42);
        assert_eq!(p.probes_received(), 0);
        assert_eq!(p.link_cache().capacity(), 10);
    }

    #[test]
    fn kill_marks_dead_and_not_good() {
        let mut p = peer();
        p.kill();
        assert!(!p.is_alive());
        assert!(!p.is_good());
    }

    #[test]
    fn dead_stub_is_dead_from_birth() {
        let mut alloc = AddrAllocator::new();
        let s = PeerState::dead_stub(alloc.allocate(), SimTime::from_secs(5.0));
        assert!(!s.is_alive());
        assert!(!s.is_good());
        assert_eq!(s.born(), SimTime::from_secs(5.0));
        assert!(s.library().is_empty());
    }

    #[test]
    fn probe_load_accumulates() {
        let mut p = peer();
        p.note_probe_received();
        p.note_probe_received();
        assert_eq!(p.probes_received(), 2);
    }

    #[test]
    fn selfish_flag_and_ping_interval_round_trip() {
        let mut p = peer();
        assert!(!p.is_selfish());
        p.set_selfish(true);
        assert!(p.is_selfish());
        p.set_ping_interval(SimDuration::from_secs(12.0));
        assert_eq!(p.ping_interval(), SimDuration::from_secs(12.0));
    }

    #[test]
    fn reputation_is_per_peer() {
        let mut p = peer();
        let mut alloc = AddrAllocator::new();
        let src = alloc.allocate();
        let subj = alloc.allocate();
        p.reputation_mut().note_shared(src, subj);
        p.reputation_mut().note_dead(subj);
        assert_eq!(
            p.reputation().blacklisted_count(),
            0,
            "one strike is not enough"
        );
    }

    #[test]
    fn malicious_live_peer_is_not_good() {
        let mut alloc = AddrAllocator::new();
        let p = PeerState::new(
            alloc.allocate(),
            SlotId(1),
            Behavior::Malicious,
            SimTime::ZERO,
            5000,
            PeerLibrary::empty(),
            10,
            None,
        );
        assert!(p.is_alive());
        assert!(!p.is_good());
        assert_eq!(p.behavior(), Behavior::Malicious);
    }
}
