//! The link cache — a GUESS peer's bounded set of neighbor pointers.
//!
//! The link cache holds at most `CacheSize` entries, one per distinct peer
//! address, and is the only state a peer actively maintains (§2.2). New
//! entries arrive from pongs and introductions; full caches admit a new
//! entry only by evicting a victim chosen by the `CacheReplacement` policy
//! — the incoming entry itself competes as a candidate, so an entry "worse"
//! than everything already cached is simply not admitted.

use simkit::hash::{self, FxHashMap};
use simkit::rng::RngStream;
use simkit::time::SimTime;

use crate::addr::PeerAddr;
use crate::entry::CacheEntry;
use crate::policy::{retention_key, ReplacementPolicy};

/// What happened when an entry was offered to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The entry was added to free space.
    Inserted,
    /// The entry was added after evicting the returned address.
    Replaced(PeerAddr),
    /// The entry lost the eviction contest and was not admitted.
    Rejected,
    /// An entry for the same address already exists; nothing changed.
    AlreadyPresent,
}

/// A bounded, deduplicated cache of [`CacheEntry`]s with policy-driven
/// eviction.
///
/// # Examples
///
/// ```
/// use guess::addr::AddrAllocator;
/// use guess::entry::CacheEntry;
/// use guess::link_cache::LinkCache;
/// use guess::policy::ReplacementPolicy;
/// use simkit::rng::RngStream;
/// use simkit::time::SimTime;
///
/// let mut alloc = AddrAllocator::new();
/// let mut rng = RngStream::from_seed(1, "doc");
/// let mut cache = LinkCache::new(2);
/// let a = CacheEntry::new(alloc.allocate(), SimTime::ZERO, 10);
/// cache.offer(a, ReplacementPolicy::Lfs, &mut rng);
/// assert!(cache.contains(a.addr()));
/// ```
#[derive(Debug, Clone)]
pub struct LinkCache {
    capacity: usize,
    entries: Vec<CacheEntry>,
    index: FxHashMap<PeerAddr, usize>,
}

impl LinkCache {
    /// Creates an empty cache with the given capacity (`CacheSize`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a GUESS peer with no neighbor slots
    /// cannot participate at all.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "link cache capacity must be positive");
        LinkCache {
            capacity,
            entries: Vec::with_capacity(capacity),
            // Pre-sized: the cache lives at or near capacity for the whole
            // run, so the index never rehashes.
            index: hash::map_with_capacity(capacity),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns true if the cache is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Membership test by address.
    #[must_use]
    pub fn contains(&self, addr: PeerAddr) -> bool {
        self.index.contains_key(&addr)
    }

    /// Borrows the entry for `addr`, if cached.
    #[must_use]
    pub fn get(&self, addr: PeerAddr) -> Option<&CacheEntry> {
        self.index.get(&addr).map(|&i| &self.entries[i])
    }

    /// All entries, in no particular order.
    #[must_use]
    pub fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// Iterates over the cached entries.
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.iter()
    }

    /// Refreshes the `TS` of the entry for `addr`, if cached. Returns true
    /// if an entry was touched.
    pub fn touch(&mut self, addr: PeerAddr, now: SimTime) -> bool {
        if let Some(&i) = self.index.get(&addr) {
            self.entries[i].touch(now);
            true
        } else {
            false
        }
    }

    /// Records a query-probe outcome against the entry for `addr` (refresh
    /// `TS`, overwrite `NumRes`). Returns true if an entry was updated.
    pub fn record_results(&mut self, addr: PeerAddr, now: SimTime, results: u32) -> bool {
        if let Some(&i) = self.index.get(&addr) {
            self.entries[i].record_results(now, results);
            true
        } else {
            false
        }
    }

    /// Removes the entry for `addr` (a dead or refused neighbor). Returns
    /// the removed entry, if any.
    pub fn remove(&mut self, addr: PeerAddr) -> Option<CacheEntry> {
        let i = self.index.remove(&addr)?;
        let removed = self.entries.swap_remove(i);
        if i < self.entries.len() {
            let moved = self.entries[i].addr();
            self.index.insert(moved, i);
        }
        Some(removed)
    }

    /// Offers a new entry under the given `CacheReplacement` policy.
    ///
    /// If an entry for the address already exists, nothing changes (pong
    /// entries never overwrite cached metadata, §2.2). If there is free
    /// space the entry is inserted. Otherwise the policy picks an eviction
    /// victim among the cached entries *and the incoming entry*; the loser
    /// is dropped.
    pub fn offer(
        &mut self,
        entry: CacheEntry,
        policy: ReplacementPolicy,
        rng: &mut RngStream,
    ) -> InsertOutcome {
        if self.contains(entry.addr()) {
            return InsertOutcome::AlreadyPresent;
        }
        if !self.is_full() {
            self.insert_unchecked(entry);
            return InsertOutcome::Inserted;
        }
        if policy == ReplacementPolicy::Random {
            // O(1) fast path, distributionally identical to the generic
            // contest below: the victim is uniform among the n incumbents
            // plus the newcomer.
            let r = rng.below(self.entries.len() + 1);
            if r == self.entries.len() {
                return InsertOutcome::Rejected;
            }
            let victim_addr = self.entries[r].addr();
            self.remove(victim_addr);
            self.insert_unchecked(entry);
            return InsertOutcome::Replaced(victim_addr);
        }
        // Eviction contest: does the newcomer beat the weakest incumbent?
        let new_key = retention_key(policy, &entry, rng);
        let weakest = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (retention_key(policy, e, rng), i))
            .min()
            .expect("cache is full, therefore non-empty");
        if new_key <= weakest.0 {
            return InsertOutcome::Rejected;
        }
        let victim_addr = self.entries[weakest.1].addr();
        self.remove(victim_addr);
        self.insert_unchecked(entry);
        InsertOutcome::Replaced(victim_addr)
    }

    fn insert_unchecked(&mut self, entry: CacheEntry) {
        debug_assert!(!self.contains(entry.addr()));
        debug_assert!(self.entries.len() < self.capacity);
        self.index.insert(entry.addr(), self.entries.len());
        self.entries.push(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrAllocator;

    fn rng() -> RngStream {
        RngStream::from_seed(5, "cache-test")
    }

    fn entry(alloc: &mut AddrAllocator, files: u32, ts: f64) -> CacheEntry {
        CacheEntry::new(alloc.allocate(), SimTime::from_secs(ts), files)
    }

    #[test]
    fn inserts_until_full() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(3);
        for i in 0..3 {
            let outcome = c.offer(entry(&mut alloc, i, 0.0), ReplacementPolicy::Random, &mut r);
            assert_eq!(outcome, InsertOutcome::Inserted);
        }
        assert!(c.is_full());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn duplicate_offer_is_ignored() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(3);
        let e = entry(&mut alloc, 10, 0.0);
        c.offer(e, ReplacementPolicy::Random, &mut r);
        let dup = CacheEntry::from_pong(e.addr(), SimTime::from_secs(9.0), 9999, 50);
        assert_eq!(
            c.offer(dup, ReplacementPolicy::Random, &mut r),
            InsertOutcome::AlreadyPresent
        );
        assert_eq!(
            c.get(e.addr()).unwrap().num_files(),
            10,
            "metadata not overwritten"
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lfs_eviction_keeps_big_sharers() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(2);
        let small = entry(&mut alloc, 5, 0.0);
        let big = entry(&mut alloc, 500, 0.0);
        c.offer(small, ReplacementPolicy::Lfs, &mut r);
        c.offer(big, ReplacementPolicy::Lfs, &mut r);
        let bigger = entry(&mut alloc, 1000, 0.0);
        let outcome = c.offer(bigger, ReplacementPolicy::Lfs, &mut r);
        assert_eq!(outcome, InsertOutcome::Replaced(small.addr()));
        assert!(c.contains(big.addr()));
        assert!(c.contains(bigger.addr()));
    }

    #[test]
    fn lfs_rejects_newcomer_worse_than_all() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(2);
        c.offer(entry(&mut alloc, 100, 0.0), ReplacementPolicy::Lfs, &mut r);
        c.offer(entry(&mut alloc, 200, 0.0), ReplacementPolicy::Lfs, &mut r);
        let tiny = entry(&mut alloc, 1, 0.0);
        assert_eq!(
            c.offer(tiny, ReplacementPolicy::Lfs, &mut r),
            InsertOutcome::Rejected
        );
        assert!(!c.contains(tiny.addr()));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_eviction_drops_stalest() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(2);
        let stale = entry(&mut alloc, 1, 1.0);
        let fresh = entry(&mut alloc, 1, 100.0);
        c.offer(stale, ReplacementPolicy::Lru, &mut r);
        c.offer(fresh, ReplacementPolicy::Lru, &mut r);
        let newer = CacheEntry::new(alloc.allocate(), SimTime::from_secs(50.0), 1);
        assert_eq!(
            c.offer(newer, ReplacementPolicy::Lru, &mut r),
            InsertOutcome::Replaced(stale.addr())
        );
    }

    #[test]
    fn remove_fixes_index_mapping() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(5);
        let es: Vec<CacheEntry> = (0..5).map(|i| entry(&mut alloc, i, 0.0)).collect();
        for e in &es {
            c.offer(*e, ReplacementPolicy::Random, &mut r);
        }
        assert!(c.remove(es[1].addr()).is_some());
        assert!(c.remove(es[1].addr()).is_none(), "second remove is None");
        // Every remaining entry is still reachable by address.
        for e in [&es[0], &es[2], &es[3], &es[4]] {
            assert_eq!(c.get(e.addr()).unwrap().addr(), e.addr());
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn touch_and_record_results_update_entries() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(2);
        let e = entry(&mut alloc, 10, 0.0);
        c.offer(e, ReplacementPolicy::Random, &mut r);
        assert!(c.touch(e.addr(), SimTime::from_secs(7.0)));
        assert_eq!(c.get(e.addr()).unwrap().ts(), SimTime::from_secs(7.0));
        assert!(c.record_results(e.addr(), SimTime::from_secs(8.0), 2));
        assert_eq!(c.get(e.addr()).unwrap().num_res(), 2);
        let ghost = alloc.allocate();
        assert!(!c.touch(ghost, SimTime::from_secs(9.0)));
        assert!(!c.record_results(ghost, SimTime::from_secs(9.0), 1));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LinkCache::new(0);
    }

    #[test]
    fn random_replacement_eventually_admits() {
        // With Random replacement the newcomer wins the uniform contest
        // with probability n/(n+1); over many offers some must land.
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(4);
        for _ in 0..4 {
            c.offer(entry(&mut alloc, 0, 0.0), ReplacementPolicy::Random, &mut r);
        }
        let mut admitted = 0;
        for _ in 0..100 {
            match c.offer(entry(&mut alloc, 0, 0.0), ReplacementPolicy::Random, &mut r) {
                InsertOutcome::Replaced(_) => admitted += 1,
                InsertOutcome::Rejected => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(
            admitted > 50,
            "random replacement admitted only {admitted}/100"
        );
        assert_eq!(c.len(), 4, "capacity invariant holds");
    }
}
