//! The link cache — a GUESS peer's bounded set of neighbor pointers.
//!
//! The link cache holds at most `CacheSize` entries, one per distinct peer
//! address, and is the only state a peer actively maintains (§2.2). New
//! entries arrive from pongs and introductions; full caches admit a new
//! entry only by evicting a victim chosen by the `CacheReplacement` policy
//! — the incoming entry itself competes as a candidate, so an entry "worse"
//! than everything already cached is simply not admitted.

use simkit::hash::{self, FxHashMap};
use simkit::rng::RngStream;
use simkit::time::SimTime;

use crate::addr::PeerAddr;
use crate::entry::CacheEntry;
use crate::policy::{retention_key, ReplacementPolicy};

/// What happened when an entry was offered to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The entry was added to free space.
    Inserted,
    /// The entry was added after evicting the returned address.
    Replaced(PeerAddr),
    /// The entry lost the eviction contest and was not admitted.
    Rejected,
    /// An entry for the same address already exists; nothing changed.
    AlreadyPresent,
}

/// A bounded, deduplicated cache of [`CacheEntry`]s with policy-driven
/// eviction.
///
/// # Examples
///
/// ```
/// use guess::addr::AddrAllocator;
/// use guess::entry::CacheEntry;
/// use guess::link_cache::LinkCache;
/// use guess::policy::ReplacementPolicy;
/// use simkit::rng::RngStream;
/// use simkit::time::SimTime;
///
/// let mut alloc = AddrAllocator::new();
/// let mut rng = RngStream::from_seed(1, "doc");
/// let mut cache = LinkCache::new(2);
/// let a = CacheEntry::new(alloc.allocate(), SimTime::ZERO, 10);
/// cache.offer(a, ReplacementPolicy::Lfs, &mut rng);
/// assert!(cache.contains(a.addr()));
/// ```
#[derive(Debug, Clone)]
pub struct LinkCache {
    capacity: usize,
    entries: Vec<CacheEntry>,
    index: FxHashMap<PeerAddr, usize>,
}

impl LinkCache {
    /// Creates an empty cache with the given capacity (`CacheSize`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a GUESS peer with no neighbor slots
    /// cannot participate at all.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "link cache capacity must be positive");
        LinkCache {
            capacity,
            entries: Vec::with_capacity(capacity),
            // Pre-sized: the cache lives at or near capacity for the whole
            // run, so the index never rehashes.
            index: hash::map_with_capacity(capacity),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns true if the cache is at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Membership test by address.
    #[must_use]
    pub fn contains(&self, addr: PeerAddr) -> bool {
        self.index.contains_key(&addr)
    }

    /// Borrows the entry for `addr`, if cached.
    #[must_use]
    pub fn get(&self, addr: PeerAddr) -> Option<&CacheEntry> {
        self.index.get(&addr).map(|&i| &self.entries[i])
    }

    /// All entries, in no particular order.
    #[must_use]
    pub fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// Iterates over the cached entries.
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.iter()
    }

    /// Refreshes the `TS` of the entry for `addr`, if cached. Returns true
    /// if an entry was touched.
    pub fn touch(&mut self, addr: PeerAddr, now: SimTime) -> bool {
        if let Some(&i) = self.index.get(&addr) {
            self.entries[i].touch(now);
            true
        } else {
            false
        }
    }

    /// Records a query-probe outcome against the entry for `addr` (refresh
    /// `TS`, overwrite `NumRes`). Returns true if an entry was updated.
    pub fn record_results(&mut self, addr: PeerAddr, now: SimTime, results: u32) -> bool {
        if let Some(&i) = self.index.get(&addr) {
            self.entries[i].record_results(now, results);
            true
        } else {
            false
        }
    }

    /// Removes the entry for `addr` (a dead or refused neighbor). Returns
    /// the removed entry, if any.
    pub fn remove(&mut self, addr: PeerAddr) -> Option<CacheEntry> {
        let i = self.index.remove(&addr)?;
        let removed = self.entries.swap_remove(i);
        if i < self.entries.len() {
            let moved = self.entries[i].addr();
            self.index.insert(moved, i);
        }
        Some(removed)
    }

    /// Offers a new entry under the given `CacheReplacement` policy.
    ///
    /// If an entry for the address already exists, nothing changes (pong
    /// entries never overwrite cached metadata, §2.2). If there is free
    /// space the entry is inserted. Otherwise the policy picks an eviction
    /// victim among the cached entries *and the incoming entry*; the loser
    /// is dropped.
    pub fn offer(
        &mut self,
        entry: CacheEntry,
        policy: ReplacementPolicy,
        rng: &mut RngStream,
    ) -> InsertOutcome {
        if self.contains(entry.addr()) {
            return InsertOutcome::AlreadyPresent;
        }
        if !self.is_full() {
            self.insert_unchecked(entry);
            return InsertOutcome::Inserted;
        }
        if policy == ReplacementPolicy::Random {
            // O(1) fast path, distributionally identical to the generic
            // contest below: the victim is uniform among the n incumbents
            // plus the newcomer.
            let r = rng.below(self.entries.len() + 1);
            if r == self.entries.len() {
                return InsertOutcome::Rejected;
            }
            let victim_addr = self.entries[r].addr();
            self.remove(victim_addr);
            self.insert_unchecked(entry);
            return InsertOutcome::Replaced(victim_addr);
        }
        // Eviction contest: does the newcomer beat the weakest incumbent?
        let new_key = retention_key(policy, &entry, rng);
        let weakest = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (retention_key(policy, e, rng), i))
            .min()
            .expect("cache is full, therefore non-empty");
        if new_key <= weakest.0 {
            return InsertOutcome::Rejected;
        }
        let victim_addr = self.entries[weakest.1].addr();
        self.remove(victim_addr);
        self.insert_unchecked(entry);
        InsertOutcome::Replaced(victim_addr)
    }

    fn insert_unchecked(&mut self, entry: CacheEntry) {
        debug_assert!(!self.contains(entry.addr()));
        debug_assert!(self.entries.len() < self.capacity);
        self.index.insert(entry.addr(), self.entries.len());
        self.entries.push(entry);
    }
}

/// Handle to one peer's cache block in a [`CacheArena`].
///
/// 4 bytes of peer state instead of an owned [`LinkCache`] (a `Vec`
/// header, a hash index, and their heap blocks). [`CacheHandle::NULL`]
/// marks peers that never cache anything (fabricated dead stubs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheHandle(u32);

impl CacheHandle {
    /// The null handle: no backing block; reads yield an empty cache.
    pub const NULL: CacheHandle = CacheHandle(u32::MAX);

    /// Returns true for the null handle.
    #[must_use]
    pub fn is_null(self) -> bool {
        self.0 == u32::MAX
    }
}

/// Arena of fixed-stride link caches, one block per live peer.
///
/// Every cache in a run shares the same capacity (`CacheSize` is not a
/// scenario-flippable parameter), so blocks are uniform `stride`-entry
/// windows into one contiguous `Vec<CacheEntry>`: allocation is a
/// free-list pop, death returns the block for the replacement peer, and
/// a million caches cost exactly `10^6 * stride * 24` bytes with no
/// per-peer heap blocks or hash indexes.
///
/// Semantics are identical to [`LinkCache`] — same entry ordering
/// (append / swap-remove), same RNG consumption, same [`InsertOutcome`]s
/// — the only difference is that address lookups linearly scan the block
/// instead of consulting a hash index. The scan consumes no randomness,
/// so a run using the arena is bit-for-bit the run using per-peer
/// [`LinkCache`]s (property-tested below).
#[derive(Debug, Clone)]
pub struct CacheArena {
    stride: usize,
    entries: Vec<CacheEntry>,
    lens: Vec<u32>,
    free: Vec<u32>,
}

impl CacheArena {
    /// Creates an arena whose caches all have capacity `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero (same contract as [`LinkCache::new`]).
    #[must_use]
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "link cache capacity must be positive");
        CacheArena {
            stride,
            entries: Vec::new(),
            lens: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Creates an arena pre-sized for `peers` concurrent caches.
    #[must_use]
    pub fn with_peer_capacity(stride: usize, peers: usize) -> Self {
        let mut a = Self::new(stride);
        a.entries.reserve(peers * stride);
        a.lens.reserve(peers);
        a
    }

    /// The per-cache capacity (`CacheSize`).
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Allocates an empty cache block, recycling a freed one if possible.
    pub fn alloc(&mut self) -> CacheHandle {
        if let Some(h) = self.free.pop() {
            self.lens[h as usize] = 0;
            return CacheHandle(h);
        }
        let h = u32::try_from(self.lens.len()).expect("cache arena handle space exhausted");
        assert!(h != u32::MAX, "cache arena handle space exhausted");
        self.lens.push(0);
        let filler = CacheEntry::new(PeerAddr::from_raw(u32::MAX), SimTime::ZERO, 0);
        self.entries
            .resize(self.entries.len() + self.stride, filler);
        CacheHandle(h)
    }

    /// Returns a dead peer's block to the free list. The handle must not
    /// be used afterwards; freeing [`CacheHandle::NULL`] is a no-op.
    pub fn free(&mut self, h: CacheHandle) {
        if h.is_null() {
            return;
        }
        self.lens[h.0 as usize] = 0;
        self.free.push(h.0);
    }

    /// Blocks ever allocated (live + freed).
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.lens.len()
    }

    fn base(&self, h: CacheHandle) -> usize {
        h.0 as usize * self.stride
    }

    fn block(&self, h: CacheHandle) -> &[CacheEntry] {
        let base = self.base(h);
        &self.entries[base..base + self.lens[h.0 as usize] as usize]
    }

    /// Current number of entries in cache `h` (≤ stride).
    #[must_use]
    pub fn len(&self, h: CacheHandle) -> usize {
        if h.is_null() {
            return 0;
        }
        self.lens[h.0 as usize] as usize
    }

    /// Returns true if cache `h` holds no entries.
    #[must_use]
    pub fn is_empty(&self, h: CacheHandle) -> bool {
        self.len(h) == 0
    }

    /// Returns true if cache `h` is at capacity.
    #[must_use]
    pub fn is_full(&self, h: CacheHandle) -> bool {
        self.len(h) >= self.stride
    }

    /// The entries of cache `h`, in the same order a [`LinkCache`] would
    /// hold them.
    #[must_use]
    pub fn entries(&self, h: CacheHandle) -> &[CacheEntry] {
        if h.is_null() {
            return &[];
        }
        self.block(h)
    }

    fn position(&self, h: CacheHandle, addr: PeerAddr) -> Option<usize> {
        self.block(h).iter().position(|e| e.addr() == addr)
    }

    /// Membership test by address.
    #[must_use]
    pub fn contains(&self, h: CacheHandle, addr: PeerAddr) -> bool {
        !h.is_null() && self.position(h, addr).is_some()
    }

    /// Borrows the entry for `addr` in cache `h`, if cached.
    #[must_use]
    pub fn get(&self, h: CacheHandle, addr: PeerAddr) -> Option<&CacheEntry> {
        if h.is_null() {
            return None;
        }
        let base = self.base(h);
        self.position(h, addr).map(move |i| &self.entries[base + i])
    }

    /// Refreshes the `TS` of the entry for `addr`, if cached. Returns
    /// true if an entry was touched.
    pub fn touch(&mut self, h: CacheHandle, addr: PeerAddr, now: SimTime) -> bool {
        let Some(i) = self.position(h, addr) else {
            return false;
        };
        let base = self.base(h);
        self.entries[base + i].touch(now);
        true
    }

    /// Records a query-probe outcome against the entry for `addr`
    /// (refresh `TS`, overwrite `NumRes`). Returns true if updated.
    pub fn record_results(
        &mut self,
        h: CacheHandle,
        addr: PeerAddr,
        now: SimTime,
        results: u32,
    ) -> bool {
        let Some(i) = self.position(h, addr) else {
            return false;
        };
        let base = self.base(h);
        self.entries[base + i].record_results(now, results);
        true
    }

    /// Removes the entry for `addr` (a dead or refused neighbor) from
    /// cache `h`. Returns the removed entry, if any. Same swap-remove
    /// reordering as [`LinkCache::remove`].
    pub fn remove(&mut self, h: CacheHandle, addr: PeerAddr) -> Option<CacheEntry> {
        let i = self.position(h, addr)?;
        let base = self.base(h);
        let len = self.lens[h.0 as usize] as usize;
        let removed = self.entries[base + i];
        self.entries[base + i] = self.entries[base + len - 1];
        self.lens[h.0 as usize] -= 1;
        Some(removed)
    }

    /// Offers a new entry to cache `h` under the replacement policy.
    /// Mirrors [`LinkCache::offer`] exactly, including RNG draw order.
    pub fn offer(
        &mut self,
        h: CacheHandle,
        entry: CacheEntry,
        policy: ReplacementPolicy,
        rng: &mut RngStream,
    ) -> InsertOutcome {
        debug_assert!(!h.is_null(), "offer to a stub cache");
        let base = self.base(h);
        let len = self.lens[h.0 as usize] as usize;
        if self.entries[base..base + len]
            .iter()
            .any(|e| e.addr() == entry.addr())
        {
            return InsertOutcome::AlreadyPresent;
        }
        if len < self.stride {
            self.entries[base + len] = entry;
            self.lens[h.0 as usize] += 1;
            return InsertOutcome::Inserted;
        }
        if policy == ReplacementPolicy::Random {
            let r = rng.below(len + 1);
            if r == len {
                return InsertOutcome::Rejected;
            }
            let victim_addr = self.entries[base + r].addr();
            // swap_remove(r) followed by push(entry), fused: the last
            // entry drops into slot r and the newcomer takes the tail.
            self.entries[base + r] = self.entries[base + len - 1];
            self.entries[base + len - 1] = entry;
            return InsertOutcome::Replaced(victim_addr);
        }
        let new_key = retention_key(policy, &entry, rng);
        let weakest = self.entries[base..base + len]
            .iter()
            .enumerate()
            .map(|(i, e)| (retention_key(policy, e, rng), i))
            .min()
            .expect("cache is full, therefore non-empty");
        if new_key <= weakest.0 {
            return InsertOutcome::Rejected;
        }
        let victim_addr = self.entries[base + weakest.1].addr();
        self.entries[base + weakest.1] = self.entries[base + len - 1];
        self.entries[base + len - 1] = entry;
        InsertOutcome::Replaced(victim_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrAllocator;

    fn rng() -> RngStream {
        RngStream::from_seed(5, "cache-test")
    }

    fn entry(alloc: &mut AddrAllocator, files: u32, ts: f64) -> CacheEntry {
        CacheEntry::new(alloc.allocate(), SimTime::from_secs(ts), files)
    }

    #[test]
    fn inserts_until_full() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(3);
        for i in 0..3 {
            let outcome = c.offer(entry(&mut alloc, i, 0.0), ReplacementPolicy::Random, &mut r);
            assert_eq!(outcome, InsertOutcome::Inserted);
        }
        assert!(c.is_full());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn duplicate_offer_is_ignored() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(3);
        let e = entry(&mut alloc, 10, 0.0);
        c.offer(e, ReplacementPolicy::Random, &mut r);
        let dup = CacheEntry::from_pong(e.addr(), SimTime::from_secs(9.0), 9999, 50);
        assert_eq!(
            c.offer(dup, ReplacementPolicy::Random, &mut r),
            InsertOutcome::AlreadyPresent
        );
        assert_eq!(
            c.get(e.addr()).unwrap().num_files(),
            10,
            "metadata not overwritten"
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lfs_eviction_keeps_big_sharers() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(2);
        let small = entry(&mut alloc, 5, 0.0);
        let big = entry(&mut alloc, 500, 0.0);
        c.offer(small, ReplacementPolicy::Lfs, &mut r);
        c.offer(big, ReplacementPolicy::Lfs, &mut r);
        let bigger = entry(&mut alloc, 1000, 0.0);
        let outcome = c.offer(bigger, ReplacementPolicy::Lfs, &mut r);
        assert_eq!(outcome, InsertOutcome::Replaced(small.addr()));
        assert!(c.contains(big.addr()));
        assert!(c.contains(bigger.addr()));
    }

    #[test]
    fn lfs_rejects_newcomer_worse_than_all() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(2);
        c.offer(entry(&mut alloc, 100, 0.0), ReplacementPolicy::Lfs, &mut r);
        c.offer(entry(&mut alloc, 200, 0.0), ReplacementPolicy::Lfs, &mut r);
        let tiny = entry(&mut alloc, 1, 0.0);
        assert_eq!(
            c.offer(tiny, ReplacementPolicy::Lfs, &mut r),
            InsertOutcome::Rejected
        );
        assert!(!c.contains(tiny.addr()));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_eviction_drops_stalest() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(2);
        let stale = entry(&mut alloc, 1, 1.0);
        let fresh = entry(&mut alloc, 1, 100.0);
        c.offer(stale, ReplacementPolicy::Lru, &mut r);
        c.offer(fresh, ReplacementPolicy::Lru, &mut r);
        let newer = CacheEntry::new(alloc.allocate(), SimTime::from_secs(50.0), 1);
        assert_eq!(
            c.offer(newer, ReplacementPolicy::Lru, &mut r),
            InsertOutcome::Replaced(stale.addr())
        );
    }

    #[test]
    fn remove_fixes_index_mapping() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(5);
        let es: Vec<CacheEntry> = (0..5).map(|i| entry(&mut alloc, i, 0.0)).collect();
        for e in &es {
            c.offer(*e, ReplacementPolicy::Random, &mut r);
        }
        assert!(c.remove(es[1].addr()).is_some());
        assert!(c.remove(es[1].addr()).is_none(), "second remove is None");
        // Every remaining entry is still reachable by address.
        for e in [&es[0], &es[2], &es[3], &es[4]] {
            assert_eq!(c.get(e.addr()).unwrap().addr(), e.addr());
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn touch_and_record_results_update_entries() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(2);
        let e = entry(&mut alloc, 10, 0.0);
        c.offer(e, ReplacementPolicy::Random, &mut r);
        assert!(c.touch(e.addr(), SimTime::from_secs(7.0)));
        assert_eq!(c.get(e.addr()).unwrap().ts(), SimTime::from_secs(7.0));
        assert!(c.record_results(e.addr(), SimTime::from_secs(8.0), 2));
        assert_eq!(c.get(e.addr()).unwrap().num_res(), 2);
        let ghost = alloc.allocate();
        assert!(!c.touch(ghost, SimTime::from_secs(9.0)));
        assert!(!c.record_results(ghost, SimTime::from_secs(9.0), 1));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LinkCache::new(0);
    }

    /// Drives a [`LinkCache`] and a [`CacheArena`] block through the same
    /// randomized op sequence with lock-stepped RNG streams and asserts
    /// bit-identical behavior: same outcomes, same entry order, same RNG
    /// consumption. This is the goldens-safety argument for swapping the
    /// engine onto the arena.
    #[test]
    fn arena_block_is_bit_identical_to_link_cache() {
        for (seed, policy) in [
            (1u64, ReplacementPolicy::Random),
            (2, ReplacementPolicy::Lfs),
            (3, ReplacementPolicy::Lru),
            (4, ReplacementPolicy::Lr),
        ] {
            let mut alloc = AddrAllocator::new();
            let mut drv = RngStream::from_seed(seed, "arena-driver");
            let mut r_cache = RngStream::from_seed(seed, "arena-ops");
            let mut r_arena = RngStream::from_seed(seed, "arena-ops");
            let mut cache = LinkCache::new(6);
            let mut arena = CacheArena::new(6);
            let h = arena.alloc();
            let mut known: Vec<PeerAddr> = Vec::new();
            for step in 0..2000 {
                let now = SimTime::from_secs(step as f64);
                let op = if known.is_empty() { 0 } else { drv.below(10) };
                match op {
                    // Offer (most common): fresh or already-seen address.
                    0..=5 => {
                        let addr = if !known.is_empty() && drv.chance(0.3) {
                            known[drv.below(known.len())]
                        } else {
                            let a = alloc.allocate();
                            known.push(a);
                            a
                        };
                        let e = CacheEntry::from_pong(
                            addr,
                            now,
                            drv.below(1000) as u32,
                            drv.below(5) as u32,
                        );
                        let a = cache.offer(e, policy, &mut r_cache);
                        let b = arena.offer(h, e, policy, &mut r_arena);
                        assert_eq!(a, b, "offer diverged at step {step}");
                    }
                    6 => {
                        let addr = known[drv.below(known.len())];
                        assert_eq!(cache.remove(addr), arena.remove(h, addr));
                    }
                    7 => {
                        let addr = known[drv.below(known.len())];
                        assert_eq!(cache.touch(addr, now), arena.touch(h, addr, now));
                    }
                    8 => {
                        let addr = known[drv.below(known.len())];
                        assert_eq!(
                            cache.record_results(addr, now, 1),
                            arena.record_results(h, addr, now, 1)
                        );
                    }
                    _ => {
                        let addr = known[drv.below(known.len())];
                        assert_eq!(cache.contains(addr), arena.contains(h, addr));
                        assert_eq!(cache.get(addr), arena.get(h, addr));
                    }
                }
                assert_eq!(cache.entries(), arena.entries(h), "order diverged");
                assert_eq!(cache.len(), arena.len(h));
                assert_eq!(cache.is_full(), arena.is_full(h));
            }
            assert_eq!(
                r_cache.next_u64(),
                r_arena.next_u64(),
                "RNG streams stayed in lockstep"
            );
        }
    }

    #[test]
    fn arena_recycles_freed_blocks() {
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut arena = CacheArena::new(3);
        let a = arena.alloc();
        let b = arena.alloc();
        assert_eq!(arena.blocks(), 2);
        arena.offer(
            a,
            entry(&mut alloc, 1, 0.0),
            ReplacementPolicy::Random,
            &mut r,
        );
        arena.offer(
            b,
            entry(&mut alloc, 2, 0.0),
            ReplacementPolicy::Random,
            &mut r,
        );
        arena.free(a);
        let c = arena.alloc();
        assert_eq!(c, a, "freed block is recycled");
        assert_eq!(arena.blocks(), 2, "no growth on recycle");
        assert!(arena.is_empty(c), "recycled block starts empty");
        assert_eq!(arena.len(b), 1, "other blocks untouched");
    }

    /// The PR-8 recycling invariant, asserted directly: once the startup
    /// population has allocated its blocks, any interleaving of
    /// join/leave churn (including temporary population dips and join
    /// waves back up to the peak) reuses freed blocks instead of growing
    /// the slab — `blocks()` is a high-water mark of *concurrent* peers,
    /// not of churn history.
    #[test]
    fn arena_churn_never_grows_past_the_startup_high_water_mark() {
        let mut alloc = AddrAllocator::new();
        let mut drv = RngStream::from_seed(77, "arena-churn");
        let mut r = rng();
        let startup = 64usize;
        let mut arena = CacheArena::with_peer_capacity(5, startup);
        let mut live: Vec<CacheHandle> = (0..startup).map(|_| arena.alloc()).collect();
        let high_water = arena.blocks();
        assert_eq!(high_water, startup, "one block per startup peer");
        for step in 0..5000 {
            let now = SimTime::from_secs(step as f64);
            match drv.below(10) {
                // Leave: free a random live peer's block (population dips).
                0..=3 if live.len() > 1 => {
                    let i = drv.below(live.len());
                    arena.free(live.swap_remove(i));
                }
                // Join: a newborn allocates, never beyond the peak.
                4..=7 if live.len() < startup => {
                    let h = arena.alloc();
                    arena.offer(
                        h,
                        entry(&mut alloc, drv.below(100) as u32, step as f64),
                        ReplacementPolicy::Random,
                        &mut r,
                    );
                    live.push(h);
                }
                // Churn replacement: free + alloc back-to-back, the
                // engine's death path.
                _ => {
                    let i = drv.below(live.len());
                    arena.free(live[i]);
                    live[i] = arena.alloc();
                    assert!(arena.is_empty(live[i]), "recycled block starts empty");
                    arena.touch(live[i], PeerAddr::from_raw(0), now);
                }
            }
            assert!(
                arena.blocks() <= high_water,
                "arena grew past its startup high-water mark at step {step}: \
                 {} blocks > {high_water}",
                arena.blocks()
            );
        }
        assert_eq!(
            arena.blocks(),
            high_water,
            "blocks are recycled, never reclaimed mid-run"
        );
    }

    #[test]
    fn null_handle_reads_as_empty() {
        let arena = CacheArena::new(4);
        let h = CacheHandle::NULL;
        assert!(h.is_null());
        assert_eq!(arena.len(h), 0);
        assert!(arena.is_empty(h));
        assert!(!arena.is_full(h));
        assert_eq!(arena.entries(h), &[]);
        let mut arena = arena;
        arena.free(h); // no-op
        assert_eq!(arena.blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_stride_arena_rejected() {
        let _ = CacheArena::new(0);
    }

    #[test]
    fn random_replacement_eventually_admits() {
        // With Random replacement the newcomer wins the uniform contest
        // with probability n/(n+1); over many offers some must land.
        let mut alloc = AddrAllocator::new();
        let mut r = rng();
        let mut c = LinkCache::new(4);
        for _ in 0..4 {
            c.offer(entry(&mut alloc, 0, 0.0), ReplacementPolicy::Random, &mut r);
        }
        let mut admitted = 0;
        for _ in 0..100 {
            match c.offer(entry(&mut alloc, 0, 0.0), ReplacementPolicy::Random, &mut r) {
                InsertOutcome::Replaced(_) => admitted += 1,
                InsertOutcome::Rejected => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(
            admitted > 50,
            "random replacement admitted only {admitted}/100"
        );
        assert_eq!(c.len(), 4, "capacity invariant holds");
    }
}
