//! Cache entries — the pointers GUESS peers hold about each other.
//!
//! The paper's entry format (§2.1):
//!
//! ```text
//! { IP address of Q, TS, NumFiles, NumRes }
//! ```
//!
//! `TS` is the time of the last direct interaction with `Q`; `NumFiles` is
//! `Q`'s advertised shared-file count (set when `Q` introduces itself and
//! propagated verbatim as entries are shared); `NumRes` is the number of
//! results `Q` returned to *the last query probe recorded in this entry*.

use simkit::time::SimTime;

use crate::addr::PeerAddr;

/// One link-cache or query-cache entry.
///
/// # Examples
///
/// ```
/// use guess::addr::AddrAllocator;
/// use guess::entry::CacheEntry;
/// use simkit::time::SimTime;
///
/// let mut alloc = AddrAllocator::new();
/// let mut e = CacheEntry::new(alloc.allocate(), SimTime::ZERO, 120);
/// e.touch(SimTime::from_secs(5.0));
/// e.record_results(SimTime::from_secs(5.0), 1);
/// assert_eq!(e.num_res(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEntry {
    addr: PeerAddr,
    ts: SimTime,
    num_files: u32,
    num_res: u32,
}

impl CacheEntry {
    /// Creates an entry for `addr` first observed at `ts`, advertising
    /// `num_files` shared files and no result history.
    #[must_use]
    pub fn new(addr: PeerAddr, ts: SimTime, num_files: u32) -> Self {
        CacheEntry {
            addr,
            ts,
            num_files,
            num_res: 0,
        }
    }

    /// Creates an entry with explicit metadata, as carried inside a Pong.
    /// Receivers insert pong entries *without* modifying any field (§2.2),
    /// so this constructor preserves whatever the sender claimed.
    #[must_use]
    pub fn from_pong(addr: PeerAddr, ts: SimTime, num_files: u32, num_res: u32) -> Self {
        CacheEntry {
            addr,
            ts,
            num_files,
            num_res,
        }
    }

    /// The peer this entry points to.
    #[must_use]
    pub fn addr(&self) -> PeerAddr {
        self.addr
    }

    /// Timestamp of the last recorded interaction.
    #[must_use]
    pub fn ts(&self) -> SimTime {
        self.ts
    }

    /// Advertised shared-file count.
    #[must_use]
    pub fn num_files(&self) -> u32 {
        self.num_files
    }

    /// Results returned by the peer's last recorded query probe.
    #[must_use]
    pub fn num_res(&self) -> u32 {
        self.num_res
    }

    /// Records a direct interaction at `now`, refreshing `TS`.
    pub fn touch(&mut self, now: SimTime) {
        self.ts = now;
    }

    /// Records the outcome of a query probe: refresh `TS` and overwrite
    /// `NumRes` with this probe's result count (the paper *resets* the
    /// field on every query, §2.1).
    pub fn record_results(&mut self, now: SimTime, results: u32) {
        self.ts = now;
        self.num_res = results;
    }

    /// Clears third-party result history. MR\* applies this to every entry
    /// learned from someone else so rankings rest only on first-hand
    /// experience (§6.4).
    pub fn reset_num_res(&mut self) {
        self.num_res = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrAllocator;

    fn addr() -> PeerAddr {
        AddrAllocator::new().allocate()
    }

    #[test]
    fn new_entry_has_no_result_history() {
        let e = CacheEntry::new(addr(), SimTime::from_secs(3.0), 42);
        assert_eq!(e.num_res(), 0);
        assert_eq!(e.num_files(), 42);
        assert_eq!(e.ts(), SimTime::from_secs(3.0));
    }

    #[test]
    fn touch_updates_only_ts() {
        let mut e = CacheEntry::new(addr(), SimTime::ZERO, 7);
        e.touch(SimTime::from_secs(10.0));
        assert_eq!(e.ts(), SimTime::from_secs(10.0));
        assert_eq!(e.num_files(), 7);
        assert_eq!(e.num_res(), 0);
    }

    #[test]
    fn record_results_overwrites_not_accumulates() {
        let mut e = CacheEntry::new(addr(), SimTime::ZERO, 7);
        e.record_results(SimTime::from_secs(1.0), 3);
        assert_eq!(e.num_res(), 3);
        e.record_results(SimTime::from_secs(2.0), 0);
        assert_eq!(e.num_res(), 0, "NumRes is reset each query");
        assert_eq!(e.ts(), SimTime::from_secs(2.0));
    }

    #[test]
    fn pong_entries_preserve_claims() {
        let e = CacheEntry::from_pong(addr(), SimTime::from_secs(9.0), 5000, 17);
        assert_eq!(e.num_files(), 5000);
        assert_eq!(e.num_res(), 17);
        assert_eq!(e.ts(), SimTime::from_secs(9.0));
    }

    #[test]
    fn reset_num_res_zeroes_history() {
        let mut e = CacheEntry::from_pong(addr(), SimTime::ZERO, 10, 99);
        e.reset_num_res();
        assert_eq!(e.num_res(), 0);
        assert_eq!(e.num_files(), 10, "NumFiles untouched");
    }
}
