//! Property-style tests for GUESS protocol data structures.
//!
//! Driven by `RngStream` instead of proptest (offline build environment):
//! each test runs many randomized cases from a fixed seed, deterministic
//! across runs and platforms.

use guess::addr::AddrAllocator;
use guess::capacity::{Admission, CapacityMeter};
use guess::entry::CacheEntry;
use guess::graph::{largest_component, UnionFind};
use guess::link_cache::{InsertOutcome, LinkCache};
use guess::policy::{
    eviction_victim, select_top_k, ProbeQueue, ReplacementPolicy, SelectionPolicy,
};
use simkit::rng::RngStream;
use simkit::time::SimTime;

const SELECTIONS: [SelectionPolicy; 5] = [
    SelectionPolicy::Random,
    SelectionPolicy::Mru,
    SelectionPolicy::Lru,
    SelectionPolicy::Mfs,
    SelectionPolicy::Mr,
];

const REPLACEMENTS: [ReplacementPolicy; 5] = [
    ReplacementPolicy::Random,
    ReplacementPolicy::Lru,
    ReplacementPolicy::Mru,
    ReplacementPolicy::Lfs,
    ReplacementPolicy::Lr,
];

/// Random (ts, files, results) specs.
fn gen_specs(rng: &mut RngStream, min: usize, max_extra: usize) -> Vec<(f64, u32, u32)> {
    let n = min + rng.below(max_extra);
    (0..n)
        .map(|_| {
            (
                rng.uniform(0.0, 1e4),
                rng.below(5000) as u32,
                rng.below(20) as u32,
            )
        })
        .collect()
}

/// (ts, files, results) triples turned into entries with unique addresses.
fn entries_from(specs: &[(f64, u32, u32)]) -> Vec<CacheEntry> {
    let mut alloc = AddrAllocator::new();
    specs
        .iter()
        .map(|&(ts, files, res)| {
            let mut e = CacheEntry::new(alloc.allocate(), SimTime::from_secs(ts), files);
            if res > 0 {
                e.record_results(SimTime::from_secs(ts), res);
            }
            e
        })
        .collect()
}

/// The cache never exceeds capacity, never holds duplicate addresses, and
/// every offer outcome is consistent with membership.
#[test]
fn link_cache_capacity_and_dedup() {
    let mut gen = RngStream::from_seed(0x21, "cases");
    for case in 0..30 {
        let capacity = 1 + gen.below(40);
        let policy = REPLACEMENTS[case % REPLACEMENTS.len()];
        let specs = gen_specs(&mut gen, 1, 200);
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let mut cache = LinkCache::new(capacity);
        for e in entries_from(&specs) {
            let outcome = cache.offer(e, policy, &mut rng);
            assert!(cache.len() <= capacity);
            match outcome {
                InsertOutcome::Inserted | InsertOutcome::Replaced(_) => {
                    assert!(cache.contains(e.addr()));
                }
                InsertOutcome::Rejected => assert!(!cache.contains(e.addr())),
                InsertOutcome::AlreadyPresent => assert!(cache.contains(e.addr())),
            }
            // No duplicates: every stored address maps back to one entry.
            let mut addrs: Vec<_> = cache.iter().map(|e| e.addr()).collect();
            let before = addrs.len();
            addrs.sort();
            addrs.dedup();
            assert_eq!(addrs.len(), before);
        }
    }
}

/// Offering to a cache with spare room always inserts.
#[test]
fn link_cache_never_rejects_with_space() {
    let mut gen = RngStream::from_seed(0x22, "cases");
    for case in 0..30 {
        let policy = REPLACEMENTS[case % REPLACEMENTS.len()];
        let specs = gen_specs(&mut gen, 1, 30);
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let mut cache = LinkCache::new(specs.len());
        for e in entries_from(&specs) {
            assert_eq!(cache.offer(e, policy, &mut rng), InsertOutcome::Inserted);
        }
        assert_eq!(cache.len(), specs.len());
    }
}

/// `select_top_k` returns a duplicate-free subset of the input whose size
/// is `min(k, len)`, and for MFS it is exactly the k largest file counts.
#[test]
fn select_top_k_is_a_subset() {
    let mut gen = RngStream::from_seed(0x23, "cases");
    for case in 0..50 {
        let policy = SELECTIONS[case % SELECTIONS.len()];
        let k = gen.below(20);
        let specs = gen_specs(&mut gen, 0, 81);
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let entries = entries_from(&specs);
        let picked = select_top_k(policy, &entries, k, &mut rng);
        assert_eq!(picked.len(), k.min(entries.len()));
        let mut addrs: Vec<_> = picked.iter().map(|e| e.addr()).collect();
        let before = addrs.len();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), before, "no duplicates");
        for p in &picked {
            assert!(entries.iter().any(|e| e.addr() == p.addr()));
        }
        if policy == SelectionPolicy::Mfs && !picked.is_empty() {
            let mut files: Vec<u32> = entries.iter().map(CacheEntry::num_files).collect();
            files.sort_unstable_by(|a, b| b.cmp(a));
            let picked_files: Vec<u32> = picked.iter().map(CacheEntry::num_files).collect();
            assert_eq!(&picked_files[..], &files[..picked.len()]);
        }
    }
}

/// The eviction victim under LFS has the minimum file count; under LRU the
/// minimum timestamp.
#[test]
fn eviction_picks_extremes() {
    let mut gen = RngStream::from_seed(0x24, "cases");
    for _ in 0..50 {
        let specs = gen_specs(&mut gen, 1, 60);
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let entries = entries_from(&specs);
        let lfs = eviction_victim(ReplacementPolicy::Lfs, &entries, &mut rng).unwrap();
        let min_files = entries.iter().map(CacheEntry::num_files).min().unwrap();
        assert_eq!(entries[lfs].num_files(), min_files);

        let lru = eviction_victim(ReplacementPolicy::Lru, &entries, &mut rng).unwrap();
        let min_ts = entries
            .iter()
            .map(|e| e.ts())
            .fold(SimTime::from_secs(f64::MAX / 2.0), SimTime::min);
        assert_eq!(entries[lru].ts(), min_ts);
    }
}

/// A probe queue pops every pushed entry exactly once, in non-increasing
/// key order for deterministic policies.
#[test]
fn probe_queue_pops_everything_in_order() {
    let mut gen = RngStream::from_seed(0x25, "cases");
    for _ in 0..50 {
        let specs = gen_specs(&mut gen, 0, 101);
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let entries = entries_from(&specs);
        let mut q = ProbeQueue::new(SelectionPolicy::Mfs);
        for e in &entries {
            q.push(*e, &mut rng);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), entries.len());
        for w in popped.windows(2) {
            assert!(w[0].num_files() >= w[1].num_files());
        }
    }
}

/// Capacity meters admit at most `limit` probes per integer second and
/// reset across seconds.
#[test]
fn capacity_meter_bounds_admissions() {
    let mut gen = RngStream::from_seed(0x26, "cases");
    for _ in 0..50 {
        let limit = 1 + gen.below(49) as u32;
        let n = 1 + gen.below(120);
        let offsets: Vec<f64> = (0..n).map(|_| gen.uniform(0.0, 0.999)).collect();
        let base = gen.below(1000) as u32;
        let mut m = CapacityMeter::with_limit(Some(limit));
        let mut admitted = 0u32;
        for &off in &offsets {
            if m.admit(SimTime::from_secs(f64::from(base) + off)) == Admission::Accepted {
                admitted += 1;
            }
        }
        assert_eq!(admitted, (offsets.len() as u32).min(limit));
        // Next second opens fresh capacity.
        assert_eq!(
            m.admit(SimTime::from_secs(f64::from(base) + 1.0)),
            Admission::Accepted
        );
    }
}

/// Union-find `largest_component` equals a BFS ground truth on random
/// graphs.
#[test]
fn union_find_matches_bfs() {
    let mut gen = RngStream::from_seed(0x27, "cases");
    for _ in 0..40 {
        let n = 1 + gen.below(120);
        let m = gen.below(300);
        let in_range: Vec<(usize, usize)> = (0..m).map(|_| (gen.below(n), gen.below(n))).collect();
        let uf_answer = largest_component(n, in_range.iter().copied());

        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &in_range {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut best = 0;
        for s in 0..n {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            let mut stack = vec![s];
            let mut size = 0;
            while let Some(v) = stack.pop() {
                size += 1;
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            best = best.max(size);
        }
        assert_eq!(uf_answer, best);
    }
}

/// Union is commutative/idempotent with respect to connectivity.
#[test]
fn union_find_connectivity_stable() {
    let mut gen = RngStream::from_seed(0x28, "cases");
    for _ in 0..40 {
        let n = 2 + gen.below(58);
        let m = 1 + gen.below(100);
        let pairs: Vec<(usize, usize)> = (0..m).map(|_| (gen.below(n), gen.below(n))).collect();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &pairs {
            uf.union(a, b);
        }
        for &(a, b) in &pairs {
            assert!(uf.connected(a, b));
            assert!(
                !uf.union(a, b),
                "re-union of connected nodes must be a no-op"
            );
        }
    }
}
