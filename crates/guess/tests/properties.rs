//! Property-based tests for GUESS protocol data structures.

use proptest::prelude::*;

use guess::addr::AddrAllocator;
use guess::capacity::{Admission, CapacityMeter};
use guess::entry::CacheEntry;
use guess::graph::{largest_component, UnionFind};
use guess::link_cache::{InsertOutcome, LinkCache};
use guess::policy::{
    eviction_victim, select_top_k, ProbeQueue, ReplacementPolicy, SelectionPolicy,
};
use simkit::rng::RngStream;
use simkit::time::SimTime;

fn arb_selection() -> impl Strategy<Value = SelectionPolicy> {
    prop_oneof![
        Just(SelectionPolicy::Random),
        Just(SelectionPolicy::Mru),
        Just(SelectionPolicy::Lru),
        Just(SelectionPolicy::Mfs),
        Just(SelectionPolicy::Mr),
    ]
}

fn arb_replacement() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Random),
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Mru),
        Just(ReplacementPolicy::Lfs),
        Just(ReplacementPolicy::Lr),
    ]
}

/// (ts, files, results) triples turned into entries with unique addresses.
fn entries_from(specs: &[(f64, u32, u32)]) -> Vec<CacheEntry> {
    let mut alloc = AddrAllocator::new();
    specs
        .iter()
        .map(|&(ts, files, res)| {
            let mut e = CacheEntry::new(alloc.allocate(), SimTime::from_secs(ts), files);
            if res > 0 {
                e.record_results(SimTime::from_secs(ts), res);
            }
            e
        })
        .collect()
}

proptest! {
    /// The cache never exceeds capacity, never holds duplicate addresses,
    /// and every offer outcome is consistent with membership.
    #[test]
    fn link_cache_capacity_and_dedup(
        seed in any::<u64>(),
        capacity in 1usize..40,
        policy in arb_replacement(),
        specs in prop::collection::vec((0.0f64..1e4, 0u32..5000, 0u32..20), 1..200),
    ) {
        let mut rng = RngStream::from_seed(seed, "prop");
        let mut cache = LinkCache::new(capacity);
        for e in entries_from(&specs) {
            let outcome = cache.offer(e, policy, &mut rng);
            prop_assert!(cache.len() <= capacity);
            match outcome {
                InsertOutcome::Inserted | InsertOutcome::Replaced(_) => {
                    prop_assert!(cache.contains(e.addr()));
                }
                InsertOutcome::Rejected => prop_assert!(!cache.contains(e.addr())),
                InsertOutcome::AlreadyPresent => prop_assert!(cache.contains(e.addr())),
            }
            // No duplicates: every stored address maps back to one entry.
            let mut addrs: Vec<_> = cache.iter().map(|e| e.addr()).collect();
            let before = addrs.len();
            addrs.sort();
            addrs.dedup();
            prop_assert_eq!(addrs.len(), before);
        }
    }

    /// Offering to a cache with spare room always inserts.
    #[test]
    fn link_cache_never_rejects_with_space(
        seed in any::<u64>(),
        policy in arb_replacement(),
        specs in prop::collection::vec((0.0f64..100.0, 0u32..100, 0u32..5), 1..30),
    ) {
        let mut rng = RngStream::from_seed(seed, "prop");
        let mut cache = LinkCache::new(specs.len());
        for e in entries_from(&specs) {
            prop_assert_eq!(cache.offer(e, policy, &mut rng), InsertOutcome::Inserted);
        }
        prop_assert_eq!(cache.len(), specs.len());
    }

    /// `select_top_k` returns a duplicate-free subset of the input whose
    /// size is `min(k, len)`, and for MFS it is exactly the k largest
    /// file counts.
    #[test]
    fn select_top_k_is_a_subset(
        seed in any::<u64>(),
        policy in arb_selection(),
        k in 0usize..20,
        specs in prop::collection::vec((0.0f64..1e4, 0u32..5000, 0u32..20), 0..80),
    ) {
        let mut rng = RngStream::from_seed(seed, "prop");
        let entries = entries_from(&specs);
        let picked = select_top_k(policy, &entries, k, &mut rng);
        prop_assert_eq!(picked.len(), k.min(entries.len()));
        let mut addrs: Vec<_> = picked.iter().map(|e| e.addr()).collect();
        let before = addrs.len();
        addrs.sort();
        addrs.dedup();
        prop_assert_eq!(addrs.len(), before, "no duplicates");
        for p in &picked {
            prop_assert!(entries.iter().any(|e| e.addr() == p.addr()));
        }
        if policy == SelectionPolicy::Mfs && !picked.is_empty() {
            let mut files: Vec<u32> = entries.iter().map(CacheEntry::num_files).collect();
            files.sort_unstable_by(|a, b| b.cmp(a));
            let picked_files: Vec<u32> = picked.iter().map(CacheEntry::num_files).collect();
            prop_assert_eq!(&picked_files[..], &files[..picked.len()]);
        }
    }

    /// The eviction victim under LFS has the minimum file count; under
    /// LRU the minimum timestamp.
    #[test]
    fn eviction_picks_extremes(
        seed in any::<u64>(),
        specs in prop::collection::vec((0.0f64..1e4, 0u32..5000, 0u32..20), 1..60),
    ) {
        let mut rng = RngStream::from_seed(seed, "prop");
        let entries = entries_from(&specs);
        let lfs = eviction_victim(ReplacementPolicy::Lfs, &entries, &mut rng).unwrap();
        let min_files = entries.iter().map(CacheEntry::num_files).min().unwrap();
        prop_assert_eq!(entries[lfs].num_files(), min_files);

        let lru = eviction_victim(ReplacementPolicy::Lru, &entries, &mut rng).unwrap();
        let min_ts = entries.iter().map(|e| e.ts()).fold(SimTime::from_secs(f64::MAX / 2.0), SimTime::min);
        prop_assert_eq!(entries[lru].ts(), min_ts);
    }

    /// A probe queue pops every pushed entry exactly once, in
    /// non-increasing key order for deterministic policies.
    #[test]
    fn probe_queue_pops_everything_in_order(
        seed in any::<u64>(),
        specs in prop::collection::vec((0.0f64..1e4, 0u32..5000, 0u32..20), 0..100),
    ) {
        let mut rng = RngStream::from_seed(seed, "prop");
        let entries = entries_from(&specs);
        let mut q = ProbeQueue::new(SelectionPolicy::Mfs);
        for e in &entries {
            q.push(*e, &mut rng);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), entries.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].num_files() >= w[1].num_files());
        }
    }

    /// Capacity meters admit at most `limit` probes per integer second
    /// and reset across seconds.
    #[test]
    fn capacity_meter_bounds_admissions(
        limit in 1u32..50,
        offsets in prop::collection::vec(0.0f64..0.999, 1..120),
        base in 0u32..1000,
    ) {
        let mut m = CapacityMeter::with_limit(Some(limit));
        let mut admitted = 0u32;
        for &off in &offsets {
            if m.admit(SimTime::from_secs(f64::from(base) + off)) == Admission::Accepted {
                admitted += 1;
            }
        }
        prop_assert_eq!(admitted, (offsets.len() as u32).min(limit));
        // Next second opens fresh capacity.
        prop_assert_eq!(m.admit(SimTime::from_secs(f64::from(base) + 1.0)), Admission::Accepted);
    }

    /// Union-find `largest_component` equals a BFS ground truth on random
    /// graphs.
    #[test]
    fn union_find_matches_bfs(
        n in 1usize..120,
        edges in prop::collection::vec((0usize..120, 0usize..120), 0..300),
    ) {
        let in_range: Vec<(usize, usize)> =
            edges.into_iter().filter(|&(a, b)| a < n && b < n).collect();
        let uf_answer = largest_component(n, in_range.iter().copied());

        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &in_range {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut best = 0;
        for s in 0..n {
            if seen[s] { continue; }
            seen[s] = true;
            let mut stack = vec![s];
            let mut size = 0;
            while let Some(v) = stack.pop() {
                size += 1;
                for &w in &adj[v] {
                    if !seen[w] {
                        seen[w] = true;
                        stack.push(w);
                    }
                }
            }
            best = best.max(size);
        }
        prop_assert_eq!(uf_answer, best);
    }

    /// Union is commutative/idempotent with respect to connectivity.
    #[test]
    fn union_find_connectivity_stable(
        n in 2usize..60,
        pairs in prop::collection::vec((0usize..60, 0usize..60), 1..100),
    ) {
        let pairs: Vec<(usize, usize)> = pairs.into_iter().filter(|&(a, b)| a < n && b < n).collect();
        let mut uf = UnionFind::new(n);
        for &(a, b) in &pairs {
            uf.union(a, b);
        }
        for &(a, b) in &pairs {
            prop_assert!(uf.connected(a, b));
            prop_assert!(!uf.union(a, b), "re-union of connected nodes must be a no-op");
        }
    }
}
