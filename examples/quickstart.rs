//! Quickstart: run one GUESS simulation with the paper's default
//! parameters and read the headline metrics off the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use guess_suite::guess::config::Config;
use guess_suite::guess::engine::GuessSim;
use guess_suite::prelude::Runnable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table 1 + Table 2 defaults: 1000 peers, Random policies, 100-entry
    // link caches, 30s ping interval, bursty ~9.26e-3 queries/user/sec.
    let cfg = Config::default();
    println!(
        "simulating {} peers for {}...",
        cfg.system.network_size, cfg.run.duration
    );

    let report = GuessSim::new(cfg)?.run();

    println!();
    println!("queries executed        : {}", report.queries);
    println!("probes per query        : {:.1}", report.probes_per_query());
    println!("  good (live peers)     : {:.1}", report.good_per_query());
    println!("  wasted (dead peers)   : {:.1}", report.dead_per_query());
    println!(
        "  refused (overloaded)  : {:.2}",
        report.refused_per_query()
    );
    println!(
        "unsatisfied queries     : {:.1}%",
        report.unsatisfaction() * 100.0
    );
    println!(
        "mean response time      : {:.1}s",
        report.mean_response_secs()
    );
    if let Some(f) = report.live_fraction {
        println!("live link-cache entries : {:.0}% of cache", f * 100.0);
    }
    println!();
    println!(
        "busiest peer received {} probes over its lifetime",
        report.loads.first().unwrap_or(&0)
    );
    println!("(paper reference for this setup: ~99 probes/query, ~6% unsatisfied — Figure 8)");
    Ok(())
}
