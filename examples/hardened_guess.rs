//! Hardened GUESS: the paper's future-work directions, switched on.
//!
//! Combines the adaptive ping interval (§6.1), adaptive parallel walks
//! (§6.2), and the pong-source reputation filter ([9]) and pits the
//! result against a hostile network — 20% colluding poisoners plus
//! selfish volley-senders — to see how much of the clean-network
//! efficiency survives.
//!
//! ```text
//! cargo run --release --example hardened_guess
//! ```

use guess_suite::guess::config::{AdaptiveParallelism, AdaptivePing, BadPongBehavior, Config};
use guess_suite::guess::engine::GuessSim;
use guess_suite::guess::policy::SelectionPolicy;
use guess_suite::prelude::Runnable;

fn hostile(seed: u64) -> Config {
    let mut cfg = Config::default();
    cfg.system.bad_peer_fraction = 0.20;
    cfg.system.bad_pong_behavior = BadPongBehavior::Bad; // colluding
    cfg.system.selfish_fraction = 0.10;
    cfg.system.selfish_parallelism = 100;
    cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mr);
    cfg.run.seed = seed;
    cfg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12}",
        "configuration", "probes/query", "unsatisfied", "p95 resp(s)", "blacklisted"
    );
    println!("{}", "-".repeat(80));

    // Plain MR in a hostile network: the paper's Figure 19/20 collapse.
    let plain = GuessSim::new(hostile(1))?.run();
    print_row("MR, no defenses", &plain);

    // MR* only (the paper's own recommendation under attack).
    let mut star_cfg = hostile(2);
    star_cfg.protocol.reset_num_results = true;
    let star = GuessSim::new(star_cfg)?.run();
    print_row("MR* (paper's answer)", &star);

    // Full hardening: MR* + reputation filter + adaptive everything.
    let mut hard_cfg = hostile(3);
    hard_cfg.protocol.reset_num_results = true;
    hard_cfg.protocol.distrust_pongs = true;
    hard_cfg.protocol.adaptive_ping = Some(AdaptivePing::default());
    hard_cfg.protocol.adaptive_parallelism = Some(AdaptiveParallelism::default());
    let hard = GuessSim::new(hard_cfg)?.run();
    print_row("MR* + filter + adaptive", &hard);

    // Clean-network reference.
    let mut clean_cfg = Config::default();
    clean_cfg.protocol = clean_cfg.protocol.with_uniform_policy(SelectionPolicy::Mr);
    let clean = GuessSim::new(clean_cfg)?.run();
    print_row("MR, clean network", &clean);

    println!();
    println!("The reputation filter spots attackers by their dead shares and drops");
    println!("their pongs; adaptive walks claw back the response-time tail; the");
    println!("combination recovers much of the clean-network behaviour that plain");
    println!("MR loses to collusion (paper Figures 19-21).");
    Ok(())
}

fn print_row(name: &str, report: &guess_suite::guess::RunReport) {
    println!(
        "{:<26} {:>12.1} {:>11.1}% {:>12.2} {:>12}",
        name,
        report.probes_per_query(),
        report.unsatisfaction() * 100.0,
        report.response_p95.unwrap_or(f64::NAN),
        report.counters.get("sources_blacklisted"),
    );
}
