//! GUESS vs Gnutella: the Figure 8 cost/quality tradeoff, at a scale that
//! runs in seconds.
//!
//! Three mechanisms search the *same* 1000-peer content population:
//! fixed-extent flooding (Gnutella), iterative deepening, and GUESS with
//! fine-grained flexible extent.
//!
//! ```text
//! cargo run --release --example guess_vs_gnutella
//! ```

use guess_suite::gnutella::iterative::{evaluate, DeepeningPolicy};
use guess_suite::gnutella::population::Population;
use guess_suite::gnutella::{FixedExtentCurve, Topology};
use guess_suite::guess::config::Config;
use guess_suite::guess::engine::GuessSim;
use guess_suite::guess::policy::SelectionPolicy;
use guess_suite::prelude::Runnable;
use guess_suite::simkit::rng::RngStream;
use guess_suite::workload::content::CatalogParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1000;
    let pop = Population::generate(n, CatalogParams::default(), 88)?;
    let mut rng = RngStream::from_seed(88, "example");

    println!("mechanism                         avg cost (probes)   unsatisfied");
    println!("{}", "-".repeat(66));

    // Gnutella: fixed extent. One pass gives the entire tradeoff curve.
    let curve = FixedExtentCurve::evaluate(&pop, 2000, &mut rng);
    for extent in [50, 200, 540, 1000] {
        println!(
            "Gnutella fixed extent E={extent:<6} {:>12}        {:>10.1}%",
            extent,
            curve.unsatisfaction_at(extent) * 100.0
        );
    }

    // Iterative deepening over an explicit 4-regular overlay.
    let topo = Topology::random_regular(n, 4, &mut rng);
    let policy = DeepeningPolicy::new(vec![2, 4, 7])?;
    let (cost, unsat) = evaluate(&topo, &pop, &policy, 500, 1, &mut rng);
    println!(
        "iterative deepening ttl=2;4;7  {cost:>12.1}        {:>10.1}%",
        unsat * 100.0
    );

    // GUESS, Random baseline and the cheap MFS configuration.
    let cfg = Config::default();
    let random = GuessSim::new(cfg.clone())?.run();
    println!(
        "GUESS (Random policies)        {:>12.1}        {:>10.1}%",
        random.probes_per_query(),
        random.unsatisfaction() * 100.0
    );
    let mut mfs = cfg;
    mfs.protocol.query_pong = SelectionPolicy::Mfs;
    let mfs_report = GuessSim::new(mfs)?.run();
    println!(
        "GUESS (QueryPong=MFS)          {:>12.1}        {:>10.1}%",
        mfs_report.probes_per_query(),
        mfs_report.unsatisfaction() * 100.0
    );

    println!();
    println!("The non-forwarding mechanism reaches the same satisfaction as a");
    println!("whole-network flood at a fraction of the probes — over an order of");
    println!("magnitude less with a good pong policy (paper §6.2, Figure 8).");
    Ok(())
}
