//! Policy showdown: run every uniform policy configuration head-to-head
//! on the same workload and compare cost, quality, and fairness.
//!
//! ```text
//! cargo run --release --example policy_showdown
//! ```

use guess_suite::guess::config::Config;
use guess_suite::guess::engine::GuessSim;
use guess_suite::guess::policy::SelectionPolicy;
use guess_suite::prelude::Runnable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let contenders: [(&str, SelectionPolicy, bool); 6] = [
        ("Random (baseline)", SelectionPolicy::Random, false),
        ("MRU (freshness)", SelectionPolicy::Mru, false),
        ("LRU (fairness)", SelectionPolicy::Lru, false),
        ("MFS (most files)", SelectionPolicy::Mfs, false),
        ("MR  (most results)", SelectionPolicy::Mr, false),
        ("MR* (first-hand MR)", SelectionPolicy::Mr, true),
    ];

    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>14}",
        "policy", "probes/query", "unsatisfied", "response(s)", "top-peer load"
    );
    println!("{}", "-".repeat(74));

    for (name, policy, reset) in contenders {
        // Apply the policy uniformly to QueryProbe / QueryPong /
        // CacheReplacement, as the paper's robustness experiments do.
        let mut cfg = Config::default();
        cfg.protocol = cfg.protocol.with_uniform_policy(policy);
        cfg.protocol.reset_num_results = reset;

        let report = GuessSim::new(cfg)?.run();
        println!(
            "{:<20} {:>12.1} {:>11.1}% {:>12.2} {:>14}",
            name,
            report.probes_per_query(),
            report.unsatisfaction() * 100.0,
            report.mean_response_secs(),
            report.loads.first().copied().unwrap_or(0),
        );
    }

    println!();
    println!("Reading the table:");
    println!(" * MFS/MR slash probe cost vs Random (paper: ~order of magnitude)");
    println!(" * ...but pile load onto the top-ranked peer (fairness cost, Figure 13)");
    println!(" * MR* pays some efficiency for robustness to lying peers (Figures 16-21)");
    Ok(())
}
