//! Cache poisoning: what 20% malicious peers do to each policy, with and
//! without collusion (§6.4 in miniature).
//!
//! Malicious peers answer probes with no results and a pong full of junk —
//! fabricated dead addresses (non-colluding) or fellow attackers
//! (colluding) — always advertising huge NumFiles/NumRes so that
//! metadata-trusting policies rank them first.
//!
//! ```text
//! cargo run --release --example cache_poisoning
//! ```

use guess_suite::guess::config::{BadPongBehavior, Config};
use guess_suite::guess::engine::GuessSim;
use guess_suite::guess::policy::SelectionPolicy;
use guess_suite::prelude::Runnable;

fn poisoned(
    policy: SelectionPolicy,
    reset: bool,
    bad_fraction: f64,
    behavior: BadPongBehavior,
    seed: u64,
) -> Config {
    let mut cfg = Config::default();
    cfg.protocol = cfg.protocol.with_uniform_policy(policy);
    cfg.protocol.reset_num_results = reset;
    cfg.system.bad_peer_fraction = bad_fraction;
    cfg.system.bad_pong_behavior = behavior;
    cfg.run.seed = seed;
    cfg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policies: [(&str, SelectionPolicy, bool); 4] = [
        ("Random", SelectionPolicy::Random, false),
        ("MR", SelectionPolicy::Mr, false),
        ("MR*", SelectionPolicy::Mr, true),
        ("MFS", SelectionPolicy::Mfs, false),
    ];

    for (behavior, label) in [
        (
            BadPongBehavior::Dead,
            "non-colluding (pongs carry dead IPs)",
        ),
        (
            BadPongBehavior::Bad,
            "COLLUDING (pongs carry other attackers)",
        ),
    ] {
        println!("=== 20% malicious peers, {label} ===");
        println!(
            "{:<8} {:>14} {:>14} {:>12} {:>14}",
            "policy", "clean probes", "poisoned", "unsat clean", "unsat poisoned"
        );
        println!("{}", "-".repeat(68));
        for (i, (name, policy, reset)) in policies.iter().enumerate() {
            let clean =
                GuessSim::new(poisoned(*policy, *reset, 0.0, behavior, 0xbad + i as u64))?.run();
            let attacked =
                GuessSim::new(poisoned(*policy, *reset, 0.20, behavior, 0xbad + i as u64))?.run();
            println!(
                "{:<8} {:>14.1} {:>14.1} {:>11.1}% {:>13.1}%",
                name,
                clean.probes_per_query(),
                attacked.probes_per_query(),
                clean.unsatisfaction() * 100.0,
                attacked.unsatisfaction() * 100.0,
            );
        }
        println!();
    }

    println!("The paper's takeaways, visible above:");
    println!(" * MFS collapses either way — it trusts claimed NumFiles forever.");
    println!(" * MR survives dead-IP poisoning (attackers score NumRes=0 and get");
    println!("   evicted) but collapses under collusion (they re-enter via pongs");
    println!("   faster than eviction removes them).");
    println!(" * MR* and Random never trust third-party claims, so they hold up;");
    println!("   MR* still beats Random on efficiency. Recommended when attackers");
    println!("   may be present.");
    Ok(())
}
