//! Churn and maintenance: how cache size and ping interval keep the
//! overlay healthy (or not) when peers come and go every few minutes.
//!
//! Reproduces the §6.1 story at a glance: moderate caches + frequent
//! pings keep most entries live and the overlay connected; huge caches
//! spread maintenance too thin; lazy pinging fragments the network.
//!
//! ```text
//! cargo run --release --example churn_and_maintenance
//! ```

use guess_suite::guess::config::Config;
use guess_suite::guess::engine::GuessSim;
use guess_suite::prelude::Runnable;
use guess_suite::simkit::time::SimDuration;

fn strained(cache: usize, ping_secs: f64, queries: bool) -> Config {
    let mut cfg = Config::default();
    cfg.system.lifespan_multiplier = 0.2; // heavy churn: median life ~12 min
    cfg.protocol.cache_size = cache;
    cfg.protocol.ping_interval = SimDuration::from_secs(ping_secs);
    cfg.run.simulate_queries = queries;
    cfg.run.seed = 0xc4a0 + cache as u64;
    cfg
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Part 1 — cache size vs cache health (PingInterval=30s, heavy churn)");
    println!(
        "{:<10} {:>10} {:>10} {:>14} {:>12}",
        "cache", "frac live", "abs live", "probes/query", "unsatisfied"
    );
    println!("{}", "-".repeat(60));
    for cache in [10, 20, 50, 100, 200, 500] {
        let report = GuessSim::new(strained(cache, 30.0, true))?.run();
        println!(
            "{:<10} {:>10.3} {:>10.1} {:>14.1} {:>11.1}%",
            cache,
            report.live_fraction.unwrap_or(f64::NAN),
            report.live_absolute.unwrap_or(f64::NAN),
            report.probes_per_query(),
            report.unsatisfaction() * 100.0,
        );
    }
    println!();
    println!("Paper's conclusion: a moderate cache (20-70) is the sweet spot —");
    println!("bigger caches mean staler entries, more dead probes, *worse* satisfaction.");
    println!();

    println!("Part 2 — ping interval vs connectivity (CacheSize=20, queries off)");
    println!("{:<14} {:>22}", "ping interval", "largest component");
    println!("{}", "-".repeat(38));
    for ping in [15.0, 60.0, 240.0, 600.0] {
        let report = GuessSim::new(strained(20, ping, false))?.run();
        println!(
            "{:<14} {:>21.0} / 1000",
            format!("{ping}s"),
            report.largest_component.unwrap_or(f64::NAN)
        );
    }
    println!();
    println!("Lazier pinging leaves dead pointers in caches and the conceptual");
    println!("overlay fragments — and without a bootstrap service it won't heal.");
    Ok(())
}
