//! `guess-suite` — umbrella crate for the GUESS non-forwarding P2P search
//! reproduction (Yang, Vinograd & Garcia-Molina, ICDCS 2004).
//!
//! This crate re-exports the workspace members so examples and downstream
//! users need a single dependency:
//!
//! * [`guess`] — the GUESS protocol and its discrete-event simulator;
//! * [`gnutella`] — forwarding baselines (flooding, fixed extent,
//!   iterative deepening);
//! * [`gossip`] — the push/pull epidemic (rumor-spreading) search
//!   engine, the third point in the design space;
//! * [`workload`] — churn, content, and query models;
//! * [`simkit`] — the deterministic simulation substrate.
//!
//! # Quick start
//!
//! ```no_run
//! use guess_suite::guess::config::Config;
//! use guess_suite::guess::engine::GuessSim;
//!
//! let report = GuessSim::new(Config::default())?.run();
//! println!("probes/query = {:.1}", report.probes_per_query());
//! # Ok::<(), guess_suite::guess::config::ConfigError>(())
//! ```
//!
//! The other engines run the same way against the same workloads:
//!
//! ```no_run
//! use guess_suite::gossip::{Config, GossipSim};
//!
//! let report = GossipSim::new(Config::default())?.run();
//! println!("messages/query = {:.1}", report.messages_per_query());
//! # Ok::<(), guess_suite::gossip::GossipConfigError>(())
//! ```
//!
//! Runnable walk-throughs live in `examples/`:
//!
//! * `quickstart` — one default simulation, explained line by line;
//! * `policy_showdown` — every policy combination head-to-head;
//! * `churn_and_maintenance` — cache size / ping interval health;
//! * `cache_poisoning` — malicious peers vs MFS/MR/MR*;
//! * `guess_vs_gnutella` — the Figure 8 tradeoff at small scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use gnutella;
pub use gossip;
pub use guess;
pub use simkit;
pub use workload;
