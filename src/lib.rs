//! `guess-suite` — umbrella crate for the GUESS non-forwarding P2P search
//! reproduction (Yang, Vinograd & Garcia-Molina, ICDCS 2004).
//!
//! This crate re-exports the workspace members so examples and downstream
//! users need a single dependency:
//!
//! * [`guess`] — the GUESS protocol and its discrete-event simulator;
//! * [`gnutella`] — forwarding baselines (flooding, fixed extent,
//!   iterative deepening);
//! * [`gossip`] — the push/pull epidemic (rumor-spreading) search
//!   engine, the third point in the design space;
//! * [`workload`] — churn, content, and query models;
//! * [`simkit`] — the deterministic simulation substrate.
//!
//! # Quick start
//!
//! All three engines share one construction-and-run surface: a
//! validating config with chained setters, `build()` to get the
//! simulator, and the [`prelude::Runnable`] trait's `run()` /
//! `run_traced()` to drive it.
//!
//! ```no_run
//! use guess_suite::prelude::*;
//!
//! let report = GuessConfig::default().build()?.run();
//! println!("probes/query = {:.1}", report.probes_per_query());
//! # Ok::<(), guess_suite::guess::config::ConfigError>(())
//! ```
//!
//! The other engines run the same way against the same workloads:
//!
//! ```no_run
//! use guess_suite::prelude::*;
//!
//! let report = GossipConfig::default().build()?.run();
//! println!("messages/query = {:.1}", report.messages_per_query());
//! let report = GnutellaConfig::default().build()?.run();
//! println!("messages/query = {:.1}", report.messages_per_query());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Runnable walk-throughs live in `examples/`:
//!
//! * `quickstart` — one default simulation, explained line by line;
//! * `policy_showdown` — every policy combination head-to-head;
//! * `churn_and_maintenance` — cache size / ping interval health;
//! * `cache_poisoning` — malicious peers vs MFS/MR/MR*;
//! * `guess_vs_gnutella` — the Figure 8 tradeoff at small scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use gnutella;
pub use gossip;
pub use guess;
pub use simkit;
pub use workload;

/// The one-stop import for driving the three engines generically:
/// each engine's config (under an engine-prefixed name), its simulator
/// and report types, and the shared [`Runnable`] / [`SimReport`] run
/// surface from `simkit`.
pub mod prelude {
    pub use gnutella::dynamic::{GnutellaConfig, GnutellaReport, GnutellaSim};
    pub use gossip::{Config as GossipConfig, GossipReport, GossipSim};
    pub use guess::config::Config as GuessConfig;
    pub use guess::engine::GuessSim;
    pub use guess::RunReport;
    pub use simkit::sim::{Runnable, SimReport};
}
